"""Numeric binding tests: model-zoo graphs become executable NumPy programs.

Three layers of evidence that the bound functions are *correct*:

1. every op's ``input_vjp`` is the exact adjoint of its forward map
   (dot-product test in float64),
2. the full chain rule through a training graph matches central finite
   differences on a smooth (kink-free) architecture, and
3. every preset binds with byte-exact tensor sizes and executes
   deterministically.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.autodiff import BackwardConfig, make_training_graph
from repro.execution import (
    bind_numeric_graph,
    execute_checkpoint_all,
    make_numeric_chain,
)
from repro.execution.numeric_ops import UnsupportedOpError, make_numeric_op
from repro.experiments.presets import build_numeric_training_graph
from repro.models.builder import INPUT, LayerGraphBuilder

# --------------------------------------------------------------------------- #
# 1. Per-op adjoint tests
# --------------------------------------------------------------------------- #
OP_CASES = [
    ("dense", [(12,)], (5,), {"bias": True}),
    ("dense", [(3, 4, 4)], (5,), {"bias": False}),
    ("relu", [(3, 4, 4)], (3, 4, 4), {}),
    ("flatten", [(3, 4, 4)], (48,), {}),
    ("identity", [(3, 4, 4)], (3, 4, 4), {}),
    ("add", [(3, 4, 4), (3, 4, 4)], (3, 4, 4), {}),
    ("concat", [(2, 4, 4), (3, 4, 4)], (5, 4, 4), {}),
    ("conv2d", [(3, 8, 8)], (5, 8, 8),
     {"kernel": 3, "stride": 1, "padding": "same", "bias": True}),
    ("conv2d", [(3, 9, 9)], (5, 5, 5),
     {"kernel": 3, "stride": 2, "padding": "same", "bias": False}),
    ("conv2d", [(3, 8, 8)], (5, 6, 6),
     {"kernel": 3, "stride": 1, "padding": "valid", "bias": True}),
    ("conv2d", [(3, 9, 9)], (5, 4, 4),
     {"kernel": 7, "stride": 2, "padding": "same", "bias": False}),
    ("depthwise_conv2d", [(4, 8, 8)], (4, 8, 8), {"kernel": 3, "stride": 1}),
    ("depthwise_conv2d", [(4, 9, 9)], (4, 5, 5), {"kernel": 3, "stride": 2}),
    ("conv_transpose2d", [(4, 4, 4)], (3, 8, 8), {"kernel": 2, "stride": 2}),
    ("maxpool2d", [(3, 8, 8)], (3, 4, 4), {"kernel": 2, "stride": 2}),
    ("maxpool2d", [(3, 9, 9)], (3, 4, 4), {"kernel": 3, "stride": 2}),
    ("maxpool2d", [(3, 1, 1)], (3, 1, 1), {"kernel": 2, "stride": 2}),
    ("avgpool2d", [(3, 8, 8)], (3, 4, 4), {"kernel": 2, "stride": 2}),
    ("avgpool2d", [(3, 9, 9)], (3, 4, 4), {"kernel": 2, "stride": 2}),
    ("global_avgpool", [(3, 5, 7)], (3, 1, 1), {}),
    ("upsample2d", [(3, 4, 4)], (3, 8, 8), {"factor": 2}),
    ("batchnorm", [(3, 4, 4)], (3, 4, 4), {}),
    ("softmax_loss", [(10,)], (1,), {}),
    ("softmax_loss", [(3, 4, 4)], (1,), {}),
]


@pytest.mark.parametrize("op_type,in_shapes,out_shape,attrs", OP_CASES,
                         ids=[f"{c[0]}-{i}" for i, c in enumerate(OP_CASES)])
def test_op_vjp_is_exact_adjoint(op_type, in_shapes, out_shape, attrs):
    """``<g, J dx> == <J^T g, dx>`` via central differences (float64)."""
    batch = 2
    op = make_numeric_op(op_type, rng=np.random.default_rng(1),
                         in_shapes=in_shapes, out_shape=out_shape,
                         attrs=attrs, batch_size=batch, dtype=np.float64)
    rng = np.random.default_rng(0)
    xs = [rng.standard_normal((batch,) + tuple(s)) for s in in_shapes]
    y = op.forward(xs)
    assert y.shape == (batch,) + tuple(out_shape)
    g = rng.standard_normal(y.shape)
    vjps = op.input_vjp(xs, y, g)
    assert len(vjps) == len(xs)
    h = 1e-6
    for i, x in enumerate(xs):
        dx = rng.standard_normal(x.shape)
        xp = [v.copy() for v in xs]
        xm = [v.copy() for v in xs]
        xp[i] = x + h * dx
        xm[i] = x - h * dx
        dy = (op.forward(xp) - op.forward(xm)) / (2 * h)
        lhs = float((g * dy).sum())
        rhs = float((vjps[i] * dx).sum())
        assert abs(lhs - rhs) <= 1e-4 * max(1.0, abs(lhs), abs(rhs))


def test_unknown_op_type_rejected():
    with pytest.raises(UnsupportedOpError, match="no NumPy implementation"):
        make_numeric_op("attention", rng=np.random.default_rng(0),
                        in_shapes=[(4,)], out_shape=(4,), attrs={},
                        batch_size=1, dtype=np.float32)


# --------------------------------------------------------------------------- #
# 2. Whole-graph gradient check (smooth float64 DAG, every op type)
# --------------------------------------------------------------------------- #
def _smooth_dag_builder() -> LayerGraphBuilder:
    """A DAG with fan-out exercising all smooth ops (no relu/maxpool kinks)."""
    b = LayerGraphBuilder("smooth", (3, 8, 8), batch_size=2, dtype_bytes=8)
    c1 = b.conv("c1", INPUT, 4, kernel=3)
    bn = b.batchnorm("bn", c1)
    p1 = b.avgpool("p1", bn, kernel=2)
    ct = b.conv_transpose("ct", p1, 4, kernel=2, stride=2)
    up = b.upsample("up", p1, factor=2)
    ad = b.add("add", [ct, up])
    cc = b.concat("cc", [ad, bn])
    c2 = b.conv("c2", cc, 2, kernel=3, stride=2)
    gp = b.global_avgpool("gp", c2)
    fl = b.flatten("fl", gp)
    d1 = b.dense("d1", fl, 6)
    b.softmax_loss("loss", d1)
    return b


def _topo_eval(numeric, override=None):
    graph = numeric.graph
    values = {}
    for i in range(graph.size):
        if override is not None and i in override:
            values[i] = override[i]
            continue
        values[i] = numeric.functions[i]([values[p] for p in graph.predecessors(i)])
    return values


@pytest.mark.parametrize("needs_output", [True, False],
                         ids=["with-consumer-output", "without-consumer-output"])
def test_training_graph_gradients_match_finite_differences(needs_output):
    config = BackwardConfig(grad_needs_consumer_output=needs_output)
    train = make_training_graph(_smooth_dag_builder().build(), config)
    numeric = bind_numeric_graph(train, seed=1)
    n_fwd = train.meta["n_forward"]
    grad_index = train.meta["grad_index"]
    values = _topo_eval(numeric)
    loss_node = n_fwd - 1
    h = 1e-6
    rng = np.random.default_rng(0)
    for node in range(n_fwd - 1):
        analytic = values[grad_index[node]]
        x = values[node]
        dx = rng.standard_normal(x.shape)
        plus = _topo_eval(numeric, {node: x + h * dx})
        minus = _topo_eval(numeric, {node: x - h * dx})
        numeric_dd = (plus[loss_node].mean() - minus[loss_node].mean()) / (2 * h)
        analytic_dd = float((analytic * dx).sum())
        assert abs(numeric_dd - analytic_dd) <= 1e-5 * max(1.0, abs(numeric_dd),
                                                           abs(analytic_dd))


def test_gradient_shapes_and_sizes_match_declared_memory():
    numeric = build_numeric_training_graph("linear_cnn", scale="ci", seed=0)
    graph = numeric.graph
    reference = execute_checkpoint_all(numeric)
    for node, value in reference.outputs.items():
        assert value.nbytes == graph.memory(node), graph.nodes[node].name


# --------------------------------------------------------------------------- #
# 3. Binding behaviour
# --------------------------------------------------------------------------- #
EXECUTABLE_PRESETS = ["linear_mlp", "linear_cnn", "vgg16"]


@pytest.mark.parametrize("preset", EXECUTABLE_PRESETS)
def test_presets_bind_and_execute_byte_exact(preset):
    overrides = {"batch_size": 1, "resolution": 16} if preset == "vgg16" else {}
    numeric = build_numeric_training_graph(preset, scale="ci", seed=0, **overrides)
    graph = numeric.graph
    reference = execute_checkpoint_all(numeric)
    assert reference.num_compute == graph.size
    loss = np.asarray(reference.outputs[graph.meta["n_forward"] - 1])
    assert np.isfinite(loss).all()
    mismatched = [n for n, v in reference.outputs.items()
                  if v.nbytes != graph.memory(n)]
    assert mismatched == []


def test_binding_is_deterministic_in_seed():
    a = build_numeric_training_graph("linear_mlp", scale="ci", seed=7)
    b = build_numeric_training_graph("linear_mlp", scale="ci", seed=7)
    other = build_numeric_training_graph("linear_mlp", scale="ci", seed=8)
    ra, rb, ro = (execute_checkpoint_all(n) for n in (a, b, other))
    for node in ra.outputs:
        np.testing.assert_array_equal(ra.outputs[node], rb.outputs[node])
    assert not np.array_equal(ra.outputs[0], ro.outputs[0])


def test_wire_roundtripped_graph_binds_identically():
    """Graphs uploaded to the server (tuples -> lists in meta) bind the same."""
    from repro.utils.serialization import graph_from_wire, graph_to_wire

    original = build_numeric_training_graph("linear_cnn", scale="ci", seed=3)
    roundtripped = bind_numeric_graph(
        graph_from_wire(graph_to_wire(original.graph)), seed=3)
    ra = execute_checkpoint_all(original)
    rb = execute_checkpoint_all(roundtripped)
    for node in ra.outputs:
        np.testing.assert_array_equal(ra.outputs[node], rb.outputs[node])


def test_toy_graph_without_metadata_rejected():
    toy = make_numeric_chain(num_layers=3)
    with pytest.raises(UnsupportedOpError, match="builder metadata"):
        bind_numeric_graph(toy.graph)


def test_forward_only_graph_binds():
    forward = _smooth_dag_builder().build()
    numeric = bind_numeric_graph(forward, seed=0)
    result = execute_checkpoint_all(numeric)
    assert set(result.outputs) == set(range(forward.size))
