"""Equivalence and cache tests for the compiled-formulation fast path.

The contract under test: ``CompiledFormulation(graph).with_budget(b)`` must be
float-for-float equal to ``MILPFormulation(graph, b).build()`` -- objective,
integrality, variable bounds, constraint matrix (compared dense) and
constraint bounds -- across every experiment preset, both formulation
variants and multiple budgets; the vectorized decode/simulate paths must
reproduce the loop-built reference bit for bit; and a budget sweep must
compile the formulation exactly once per graph.
"""

import numpy as np
import pytest

from helpers import ample_budget, tight_budget

from repro.core import (
    checkpoint_all_schedule,
    checkpoint_last_node_schedule,
    validate_correctness_constraints,
)
from repro.core.simulator import (
    simulate_schedule_memory,
    simulate_schedule_memory_reference,
)
from repro.experiments.budget_sweep import budget_grid
from repro.experiments.presets import EXPERIMENT_MODELS, build_training_graph
from repro.service import FormulationCache, SolveService, set_formulation_cache
from repro.solvers import (
    CompiledFormulation,
    InfeasibleBudgetError,
    MILPFormulation,
    legacy_formulation,
    solve_branch_and_bound,
    solve_ilp_rematerialization,
)

PRESETS = sorted(EXPERIMENT_MODELS)

#: Stage count used for the unpartitioned variant on the preset graphs: the
#: Eq. (8) formulation is only exercised at small T in the Appendix-A ablation,
#: and T = n on ResNet50 would dominate the suite's runtime for no extra
#: coverage of the assembly code paths.
UNPARTITIONED_STAGES = 10

_GRAPHS = {}


def preset_graph(key):
    if key not in _GRAPHS:
        _GRAPHS[key] = build_training_graph(key)
    return _GRAPHS[key]


def assert_arrays_equal(legacy, compiled):
    __tracebackhide__ = True
    assert np.array_equal(legacy.c, compiled.c)
    assert np.array_equal(legacy.integrality, compiled.integrality)
    assert np.array_equal(legacy.lb, compiled.lb)
    assert np.array_equal(legacy.ub, compiled.ub)
    assert np.array_equal(legacy.constraint_lb, compiled.constraint_lb)
    assert np.array_equal(legacy.constraint_ub, compiled.constraint_ub)
    assert legacy.A.shape == compiled.A.shape
    # Elementwise equality of the (summed, canonical) sparse matrices -- the
    # same statement as dense equality without materializing ~GB of zeros for
    # the larger presets.
    assert (legacy.A != compiled.A).nnz == 0


class TestArraysEquivalence:
    @pytest.mark.parametrize("preset", PRESETS)
    def test_frontier_matches_loop_built_across_budgets(self, preset):
        graph = preset_graph(preset)
        compiled = CompiledFormulation(graph)
        for budget in budget_grid(graph, num_budgets=3):
            legacy = MILPFormulation(graph, budget)
            assert_arrays_equal(legacy.build(), compiled.with_budget(budget))

    @pytest.mark.parametrize("preset", PRESETS)
    def test_unpartitioned_matches_loop_built_across_budgets(self, preset):
        graph = preset_graph(preset)
        T = UNPARTITIONED_STAGES
        compiled = CompiledFormulation(graph, frontier_advancing=False, num_stages=T)
        for budget in budget_grid(graph, num_budgets=3):
            legacy = MILPFormulation(graph, budget, frontier_advancing=False,
                                     num_stages=T)
            assert_arrays_equal(legacy.build(), compiled.with_budget(budget))

    def test_small_fixture_graphs(self, chain5_train, diamond_train, varied_chain_train):
        for graph in (chain5_train, diamond_train, varied_chain_train):
            compiled = CompiledFormulation(graph)
            for fraction in (0.55, 0.8, 1.0):
                budget = tight_budget(graph, fraction)
                legacy = MILPFormulation(graph, budget)
                assert_arrays_equal(legacy.build(), compiled.with_budget(budget))

    def test_with_budget_shares_static_arrays(self, chain5_train):
        compiled = CompiledFormulation(chain5_train)
        a1 = compiled.with_budget(ample_budget(chain5_train))
        a2 = compiled.with_budget(tight_budget(chain5_train, 0.7))
        assert a1.c is a2.c and a1.A is a2.A and a1.lb is a2.lb
        assert a1.ub is not a2.ub  # only the budget-bearing bounds differ
        u = compiled.u_slice
        assert not np.array_equal(a1.ub[u], a2.ub[u])

    def test_budget_below_overhead_raises(self, tiny_vgg_train):
        compiled = CompiledFormulation(tiny_vgg_train)
        with pytest.raises(InfeasibleBudgetError):
            compiled.with_budget(tiny_vgg_train.constant_overhead - 1)

    def test_frontier_requires_full_stage_count(self, chain5_train):
        with pytest.raises(ValueError):
            CompiledFormulation(chain5_train, num_stages=3)


class TestDecodeEquivalence:
    def test_decode_matches_loop_built(self, tiny_unet_train):
        graph = tiny_unet_train
        budget = tight_budget(graph, 0.7)
        legacy = MILPFormulation(graph, budget)
        legacy.build()
        compiled = CompiledFormulation(graph)
        rng = np.random.default_rng(7)
        x = rng.random(compiled.num_variables)
        dm_l, dm_c = legacy.decode_matrices(x), compiled.decode_matrices(x)
        assert np.array_equal(dm_l.R, dm_c.R)
        assert np.array_equal(dm_l.S, dm_c.S)
        (Rl, Sl), (Rc, Sc) = legacy.decode_fractional(x), compiled.decode_fractional(x)
        assert np.array_equal(Rl, Rc) and np.array_equal(Sl, Sc)
        assert legacy.objective_value(x) == pytest.approx(compiled.objective_value(x))

    def test_objective_value_matches_dict_iteration(self, varied_chain_train):
        graph = varied_chain_train
        f = MILPFormulation(graph, ample_budget(graph))
        rng = np.random.default_rng(3)
        x = rng.random(f.num_variables)
        looped = sum(graph.cost(i) * x[idx] for (t, i), idx in f.r_index.items())
        assert f.objective_value(x) == pytest.approx(looped, rel=1e-12)

    def test_solver_results_identical_on_both_paths(self, varied_chain_train):
        budget = tight_budget(varied_chain_train, 0.6)
        fast = solve_ilp_rematerialization(varied_chain_train, budget)
        with legacy_formulation():
            slow = solve_ilp_rematerialization(varied_chain_train, budget)
        assert fast.feasible and slow.feasible
        assert np.array_equal(fast.matrices.R, slow.matrices.R)
        assert np.array_equal(fast.matrices.S, slow.matrices.S)
        assert fast.compute_cost == pytest.approx(slow.compute_cost)


class TestBranchAndBound:
    def test_node_counts_unchanged_on_compiled_arrays(self, chain5_train):
        budget = tight_budget(chain5_train, 0.7)
        legacy_arrays = MILPFormulation(chain5_train, budget).build()
        compiled = CompiledFormulation(chain5_train)
        res_legacy = solve_branch_and_bound(legacy_arrays, max_nodes=2000)
        res_compiled = solve_branch_and_bound(compiled.with_budget(budget), max_nodes=2000)
        assert res_legacy.nodes_explored == res_compiled.nodes_explored
        assert res_legacy.proven_optimal and res_compiled.proven_optimal
        assert res_compiled.objective == pytest.approx(res_legacy.objective)
        assert np.array_equal(res_legacy.x, res_compiled.x)


class TestFormulationCache:
    def test_sweep_compiles_exactly_once(self, tiny_vgg_train):
        fresh = FormulationCache()
        previous = set_formulation_cache(fresh)
        try:
            service = SolveService(cache=None)
            budgets = budget_grid(tiny_vgg_train, num_budgets=4)
            results = service.sweep(
                tiny_vgg_train,
                [("checkmate_approx", b) for b in budgets],
                parallel=False,
            )
        finally:
            set_formulation_cache(previous)
        assert all(r is not None for r in results)
        stats = fresh.stats()
        assert stats["compiles"] == 1
        assert stats["misses"] == 1
        # The sweep precompile plus one LP solve per budget all hit the entry.
        assert stats["hits"] >= len(budgets)

    def test_cache_keyed_by_content_not_identity(self, tiny_vgg_train):
        from repro.models import vgg16
        from repro.autodiff import make_training_graph
        from repro.cost_model import FlopCostModel

        rebuilt = FlopCostModel().apply(make_training_graph(vgg16(batch_size=2, resolution=32)))
        cache = FormulationCache()
        first = cache.get(tiny_vgg_train)
        second = cache.get(rebuilt)
        assert first is second
        assert cache.stats()["compiles"] == 1

    def test_lru_eviction(self, chain5_train, diamond_train, varied_chain_train):
        cache = FormulationCache(max_entries=2)
        cache.get(chain5_train)
        cache.get(diamond_train)
        cache.get(varied_chain_train)  # evicts chain5
        assert len(cache) == 2
        assert cache.stats()["evictions"] == 1
        cache.get(chain5_train)  # recompiles
        assert cache.stats()["compiles"] == 4


class TestVectorizedSimulator:
    def schedules(self, graph):
        yield checkpoint_all_schedule(graph)
        yield checkpoint_last_node_schedule(graph)
        result = solve_ilp_rematerialization(graph, tight_budget(graph, 0.65))
        if result.feasible:
            yield result.matrices

    @pytest.mark.parametrize("fixture", ["chain5_train", "diamond_train",
                                         "varied_chain_train", "tiny_unet_train"])
    def test_matches_reference_recurrence(self, fixture, request):
        graph = request.getfixturevalue(fixture)
        for matrices in self.schedules(graph):
            fast = simulate_schedule_memory(graph, matrices)
            reference = simulate_schedule_memory_reference(graph, matrices)
            assert np.array_equal(fast, reference)


class TestVectorizedValidator:
    def test_clean_schedule_fast_path(self, tiny_resnet_train):
        matrices = checkpoint_all_schedule(tiny_resnet_train)
        assert validate_correctness_constraints(tiny_resnet_train, matrices) == []

    def test_violations_still_reported_in_detail(self, chain5_train):
        matrices = checkpoint_all_schedule(chain5_train)
        matrices.S[0, 0] = 1          # (1d)
        matrices.R[2, 2] = 0          # (8a)
        matrices.S[3, 1] = 1
        matrices.S[2, 1] = 0
        matrices.R[2, 1] = 0          # (1c) for S[3, 1]
        messages = validate_correctness_constraints(chain5_train, matrices)
        assert any("(1d)" in m for m in messages)
        assert any("(8a)" in m for m in messages)
        assert any("(1c)" in m for m in messages)
