"""Tests for the experiment harness (CI-scale versions of each paper artifact)."""

import pytest

from helpers import ample_budget, tight_budget

from repro.experiments import (
    approximation_ratio_table,
    budget_grid,
    budget_sweep,
    build_training_graph,
    format_sweep,
    format_strategy_matrix,
    integrality_gap_experiment,
    max_batch_size,
    memory_breakdown_table,
    memory_timeline,
    naive_rounding_study,
    preset_model,
    render_schedule_ascii,
    rounding_comparison,
    schedule_visualization,
    strategy_matrix_rows,
)
from repro.experiments.integrality_gap import unit_linear_training_graph
from repro.experiments.max_batch import cost_cap
from repro.core import checkpoint_all_schedule
from repro.models import linear_cnn, vgg16


class TestPresets:
    def test_preset_model_builds(self):
        g = preset_model("vgg16", scale="ci")
        assert g.size > 10

    def test_preset_override(self):
        g = preset_model("vgg16", batch_size=3, resolution=32)
        assert g.meta["batch_size"] == 3

    def test_unknown_preset(self):
        with pytest.raises(KeyError):
            preset_model("inceptionXXL")

    def test_build_training_graph_from_key_and_graph(self):
        a = build_training_graph("vgg16", batch_size=1, resolution=32)
        b = build_training_graph(vgg16(batch_size=1, resolution=32))
        assert a.size == b.size
        assert "grad_index" in a.meta

    def test_deepblock_preset_has_repeated_fusable_blocks(self):
        from repro.analysis import isomorphic_segment_groups, optimize_graph

        graph = build_training_graph("deepblock")
        # Each block carries a zero-cost identity alias plus the head flatten:
        # the canonicalizer must strictly shrink this preset.
        result = optimize_graph(graph)
        assert result.stats["nodes_removed"] >= 5
        # And the blocks are structurally identical, so they group.
        groups = isomorphic_segment_groups(graph)
        assert any(len(segs) > 1 for segs in groups.values())


class TestBudgetSweep:
    def test_budget_grid_monotone_and_above_overhead(self, tiny_vgg_train):
        grid = budget_grid(tiny_vgg_train, num_budgets=4)
        assert grid == sorted(grid)
        assert all(b > tiny_vgg_train.constant_overhead for b in grid)

    def test_sweep_points_and_formatting(self, tiny_vgg_train):
        budgets = budget_grid(tiny_vgg_train, num_budgets=2)
        points = budget_sweep(tiny_vgg_train, budgets,
                              strategies=("checkpoint_all", "chen_sqrt_n", "checkmate_approx"),
                              ilp_time_limit_s=10)
        assert len(points) == 6
        feasible = [p for p in points if p.feasible]
        assert feasible
        assert all(p.overhead >= 1.0 - 1e-9 for p in feasible)
        text = format_sweep(points)
        assert "checkmate_approx" in text

    def test_linear_only_strategies_skipped_on_nonlinear(self, tiny_unet_train):
        budgets = budget_grid(tiny_unet_train, num_budgets=1)
        points = budget_sweep(tiny_unet_train, budgets,
                              strategies=("chen_sqrt_n", "griewank_logn", "linearized_sqrt_n"))
        assert {p.strategy for p in points} == {"linearized_sqrt_n"}

    def test_checkmate_never_worse_than_heuristics(self, tiny_vgg_train):
        budgets = budget_grid(tiny_vgg_train, num_budgets=2, low_fraction=0.6)
        points = budget_sweep(tiny_vgg_train, budgets,
                              strategies=("linearized_greedy", "checkmate_approx"))
        by_budget = {}
        for p in points:
            by_budget.setdefault(p.budget, {})[p.strategy] = p
        for budget, entries in by_budget.items():
            cm, base = entries.get("checkmate_approx"), entries.get("linearized_greedy")
            if cm and base and cm.feasible and base.feasible:
                assert cm.overhead <= base.overhead + 0.05


class TestMaxBatch:
    def test_max_batch_monotone_in_budget(self):
        builder = lambda b: linear_cnn(num_layers=5, batch_size=b, resolution=32, channels=16)
        small = max_batch_size(builder, "checkpoint_all", budget=32 * 2**20, max_batch=64)
        large = max_batch_size(builder, "checkpoint_all", budget=128 * 2**20, max_batch=64)
        assert large >= small >= 1

    def test_remat_allows_larger_batches(self):
        builder = lambda b: linear_cnn(num_layers=6, batch_size=b, resolution=32, channels=16)
        budget = 48 * 2**20
        baseline = max_batch_size(builder, "checkpoint_all", budget=budget, max_batch=128)
        remat = max_batch_size(builder, "linearized_greedy", budget=budget, max_batch=128)
        assert remat >= baseline

    def test_impossible_budget_returns_zero(self):
        builder = lambda b: linear_cnn(num_layers=4, batch_size=b, resolution=32, channels=16)
        assert max_batch_size(builder, "checkpoint_all", budget=1024, max_batch=8) == 0

    def test_cost_cap_formula(self, tiny_vgg_train):
        cap = cost_cap(tiny_vgg_train)
        assert cap == pytest.approx(2 * tiny_vgg_train.forward_cost()
                                    + tiny_vgg_train.backward_cost())


class TestTablesAndFigures:
    def test_strategy_matrix_rows(self):
        rows = strategy_matrix_rows()
        assert len(rows) == 10
        text = format_strategy_matrix()
        assert "cost aware" in text and "checkmate_ilp" in text

    def test_memory_breakdown_table(self):
        graphs = {"vgg16": vgg16(batch_size=4, resolution=32)}
        breakdowns = memory_breakdown_table(graphs)
        assert len(breakdowns) == 1 and breakdowns[0].total > 0

    def test_memory_timeline(self, varied_chain_train):
        timeline = memory_timeline(varied_chain_train,
                                   budget=tight_budget(varied_chain_train, 0.7),
                                   ilp_time_limit_s=20)
        assert timeline.retain_all.peak_memory > 0
        assert timeline.rematerialize_feasible
        assert timeline.rematerialized.peak_memory <= timeline.retain_all.peak_memory
        assert timeline.peak_reduction_bytes >= 0
        assert timeline.runtime_increase >= 1.0 - 1e-9

    def test_schedule_render_ascii(self, varied_chain_train):
        art = render_schedule_ascii(checkpoint_all_schedule(varied_chain_train))
        lines = art.split("\n")
        assert len(lines) == varied_chain_train.size
        assert lines[0].startswith("#")

    def test_schedule_visualization(self, varied_chain_train):
        viz = schedule_visualization(varied_chain_train, tight_budget(varied_chain_train, 0.7),
                                     strategies=("checkpoint_all", "checkmate_ilp"),
                                     ilp_time_limit_s=20)
        assert set(viz.renders) == {"checkpoint_all", "checkmate_ilp"}
        assert viz.recompute_counts["checkmate_ilp"] >= viz.recompute_counts["checkpoint_all"]
        assert "===" in viz.side_by_side()

    def test_approximation_ratio_table(self, varied_chain_train):
        rows = approximation_ratio_table({"chain": varied_chain_train},
                                         strategies=("linearized_greedy", "checkmate_approx"),
                                         num_budgets=2, ilp_time_limit_s=20)
        assert len(rows) == 1
        row = rows[0]
        assert row.budgets_evaluated >= 1
        for ratio in row.ratios.values():
            assert ratio >= 1.0 - 1e-6

    def test_rounding_comparison(self, varied_chain_train):
        comp = rounding_comparison(varied_chain_train, tight_budget(varied_chain_train, 0.65),
                                   num_randomized_samples=4, include_ilp=False)
        assert comp.checkpoint_all_cost > 0
        assert comp.deterministic_cost is not None
        assert len(comp.randomized_points) == 4

    def test_naive_rounding_study(self, varied_chain_train):
        stats = naive_rounding_study(varied_chain_train, tight_budget(varied_chain_train, 0.6),
                                     num_samples=50)
        assert stats["randomized"]["num_samples"] == 50
        # Naive rounding is almost never feasible (the paper observes a rate of
        # exactly zero on VGG16); on this tiny graph a small residual rate can
        # remain, but it must stay far below the two-phase success rate.
        assert stats["randomized"]["num_feasible"] <= 0.2 * 50


class TestIntegralityGap:
    def test_unit_instance_shape(self):
        g = unit_linear_training_graph(8)
        assert g.size == 16
        assert set(g.cost_vector) == {1.0}
        assert set(g.memory_vector) == {1.0}

    def test_partitioned_gap_small(self):
        result = integrality_gap_experiment(budget=4, include_unpartitioned=False,
                                            time_limit_s=60)
        assert result.partitioned_gap is not None
        assert 1.0 <= result.partitioned_gap < 2.5
        assert result.partitioned_solve_time_s < 60
