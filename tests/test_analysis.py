"""Graph static-analysis framework: analyses, passes, provenance, linter.

Covers the edge cases the pass manager must survive (empty graph, single
node, everything-dead-but-the-loss, the fixed-point termination bound),
round-trips schedules through provenance under repeated fusion, checks the
linter's diagnostics against deliberately corrupted presets, and closes the
loop end-to-end: ``solve_canonicalized`` must produce the raw solve's
objective and an execution report with bit-identical outputs.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import (
    DeadNodeElimination,
    PassManager,
    ZeroCostChainFusion,
    dead_nodes,
    isomorphic_segment_groups,
    lint_graph,
    lint_graph_cached,
    live_node_mask,
    live_roots,
    liveness_intervals,
    optimize_graph,
    structural_graph_hash,
)
from repro.analysis.passes import NodeProvenance
from repro.core import DFGraph, NodeInfo
from repro.core.schedule import ScheduleMatrices, validate_correctness_constraints

from helpers import tight_budget


def graph_with_dead_branch() -> DFGraph:
    """0 -> 1 -> 4(loss); 0 -> 2 -> 3 is a dead side branch."""
    nodes = [NodeInfo(f"n{i}", cost=1.0, memory=4) for i in range(5)]
    deps = {0: [], 1: [0], 2: [0], 3: [2], 4: [1]}
    return DFGraph(nodes=nodes, deps=deps, name="dead-branch")


def zero_chain(length: int) -> DFGraph:
    """A head with cost 1 followed by ``length - 1`` zero-cost tail nodes."""
    nodes = [NodeInfo("head", cost=1.0, memory=4)]
    nodes += [NodeInfo(f"z{i}", cost=0.0, memory=1) for i in range(length - 1)]
    deps = {i: ([i - 1] if i else []) for i in range(length)}
    # A non-zero-cost terminal so the chain nodes are all fusable.
    nodes.append(NodeInfo("loss", cost=2.0, memory=4))
    deps[length] = [length - 1]
    return DFGraph(nodes=nodes, deps=deps, name="zero-chain")


class TestAnalyses:
    def test_liveness_intervals_chain(self, chain5_train):
        intervals = liveness_intervals(chain5_train)
        n = chain5_train.size
        assert intervals.shape == (n, 2)
        # Definition stage is the node's own index; last use never precedes it.
        assert (intervals[:, 0] == np.arange(n)).all()
        assert (intervals[:, 1] >= intervals[:, 0]).all()
        # The first activation is consumed by the backward pass: long interval.
        assert intervals[0, 1] > chain5_train.size // 2

    def test_live_roots_training_graph(self, chain5_train):
        roots = live_roots(chain5_train)
        assert chain5_train.terminal_node in roots
        # Every backward sink (parameter gradient) is a root.
        for i in chain5_train.sinks():
            if chain5_train.nodes[i].is_backward:
                assert i in roots

    def test_training_graphs_have_no_dead_nodes(self, tiny_vgg_train):
        assert dead_nodes(tiny_vgg_train) == []

    def test_dead_branch_detected(self):
        graph = graph_with_dead_branch()
        assert dead_nodes(graph) == [2, 3]
        mask = live_node_mask(graph)
        assert mask.tolist() == [True, True, False, False, True]


class TestStructuralHash:
    def test_name_and_meta_invariance(self, chain5_train):
        renamed = DFGraph(
            nodes=tuple(NodeInfo(f"x{i}", n.cost, n.memory, n.is_backward,
                                 n.layer_id)
                        for i, n in enumerate(chain5_train.nodes)),
            deps=chain5_train.deps,
            input_memory=chain5_train.input_memory,
            parameter_memory=chain5_train.parameter_memory,
            name="totally-different", meta={"op_attrs": [{"k": 1}]})
        assert structural_graph_hash(renamed) == structural_graph_hash(chain5_train)

    def test_cost_sensitivity(self, chain5_train):
        costs = {i: chain5_train.cost(i) for i in range(chain5_train.size)}
        costs[0] += 1.0
        bumped = chain5_train.with_costs(costs)
        assert structural_graph_hash(bumped) != structural_graph_hash(chain5_train)

    def test_memoized_on_instance(self, chain5):
        first = structural_graph_hash(chain5)
        assert structural_graph_hash(chain5) is first  # cached string

    def test_isomorphic_groups_on_repeated_blocks(self):
        from repro.experiments.presets import build_training_graph
        graph = build_training_graph("deepblock")
        groups = isomorphic_segment_groups(graph)
        repeated = [segs for segs in groups.values() if len(segs) > 1]
        assert repeated, "deepblock's identical blocks must group together"
        largest = max(repeated, key=len)
        assert len(largest) >= 2
        # Segments in one group never overlap and have equal length.
        sizes = {len(s) for s in largest}
        assert len(sizes) == 1
        flat = [i for seg in largest for i in seg]
        assert len(flat) == len(set(flat))


class TestPassEdgeCases:
    def test_empty_graph(self):
        empty = DFGraph(nodes=(), deps={}, name="empty")
        result = optimize_graph(empty)
        assert result.graph.size == 0
        assert result.stats["converged"] is True
        assert result.stats["nodes_removed"] == 0
        report = lint_graph(empty)
        assert [d.code for d in report.diagnostics] == ["G001"]
        assert report.ok  # G001 is a warning, not an error

    def test_single_node_graph(self):
        one = DFGraph(nodes=(NodeInfo("only", cost=1.0, memory=1),),
                      deps={0: []}, name="one")
        result = optimize_graph(one)
        assert result.changed is False
        assert result.graph.size == 1
        assert result.provenance.orig_to_opt == (0,)

    def test_all_dead_except_loss(self):
        # Every non-terminal node is a sink nothing consumes: one DCE round
        # must strip the graph down to the loss alone.
        nodes = [NodeInfo(f"n{i}", cost=1.0, memory=2) for i in range(4)]
        deps = {0: [], 1: [], 2: [], 3: [0]}
        graph = DFGraph(nodes=nodes, deps=deps, name="mostly-dead")
        result = optimize_graph(graph)
        assert result.graph.size == 2  # the loss and its one ancestor
        assert result.stats["dce"] == 2
        assert result.provenance.orig_to_opt == (0, None, None, 1)

    def test_fixed_point_termination_bound(self):
        # A 5-deep zero-cost chain needs several pairwise fusion rounds;
        # max_passes=1 must stop early and report non-convergence.
        graph = zero_chain(5)
        bounded = optimize_graph(graph, max_passes=1)
        assert bounded.stats["converged"] is False
        full = optimize_graph(graph)
        assert full.stats["converged"] is True
        assert full.graph.size < bounded.graph.size
        # Fixed point: the whole zero-cost chain fuses into its head.
        assert full.graph.size == 2
        assert full.graph.total_cost() == graph.total_cost()
        assert (full.graph.total_activation_memory()
                == graph.total_activation_memory())

    def test_max_passes_validation(self):
        with pytest.raises(ValueError):
            PassManager(max_passes=0)

    def test_fusion_skips_terminal_and_mixed_direction(self, chain5_train):
        # chain5_train has unit costs everywhere: nothing is zero-cost, so
        # fusion must be a no-op and DCE must keep everything.
        result = optimize_graph(chain5_train)
        assert result.changed is False
        assert result.stats["fusion"] == 0
        assert result.stats["dce"] == 0


class TestProvenance:
    def test_identity_round_trip(self, chain5_train):
        n = chain5_train.size
        prov = NodeProvenance.identity(n)
        R = np.eye(n, dtype=np.uint8)
        S = np.zeros((n, n), dtype=np.uint8)
        matrices = ScheduleMatrices(R, S)
        decoded = prov.decode_matrices(chain5_train, matrices)
        assert (decoded.R == R).all() and (decoded.S == S).all()

    def test_compose_size_mismatch_rejected(self):
        a = NodeProvenance.identity(3)
        b = NodeProvenance.identity(4)
        with pytest.raises(ValueError):
            a.compose(b)

    def test_decode_width_mismatch_rejected(self, chain5):
        prov = NodeProvenance.identity(chain5.size)
        wrong = ScheduleMatrices(np.ones((2, 3), dtype=np.uint8),
                                 np.zeros((2, 3), dtype=np.uint8))
        with pytest.raises(ValueError):
            prov.decode_matrices(chain5, wrong)

    def test_round_trip_under_repeated_fusion(self):
        # 5-node zero chain + loss fuses down to 2 nodes over multiple
        # rounds; a checkpoint-all schedule of the optimized graph must
        # decode to a *valid* original-graph schedule with the same cost.
        graph = zero_chain(5)
        result = optimize_graph(graph)
        assert result.graph.size == 2
        m = result.graph.size
        R = np.tril(np.ones((m, m), dtype=np.uint8))  # checkpoint-all
        S = np.triu(np.tril(np.ones((m, m), dtype=np.uint8)), k=0)
        S = np.zeros((m, m), dtype=np.uint8)
        for t in range(1, m):
            S[t, :t] = 1
        matrices = ScheduleMatrices(R, S)
        decoded = result.decode_matrices(matrices)
        assert decoded.num_nodes == graph.size
        assert decoded.num_stages == m
        violations = validate_correctness_constraints(
            graph, decoded, frontier_advancing=False)
        assert violations == []
        # Compute cost is preserved exactly: fused tails cost zero.
        orig_cost = sum(graph.cost(i) * int(decoded.R[:, i].sum())
                        for i in range(graph.size))
        opt_cost = sum(result.graph.cost(k) * int(matrices.R[:, k].sum())
                       for k in range(m))
        assert orig_cost == opt_cost

    def test_provenance_serializes(self):
        result = optimize_graph(zero_chain(3))
        payload = result.provenance.to_dict()
        assert payload["orig_to_opt"][0] == 0
        assert sorted(m for ms in payload["opt_to_orig"] for m in ms) == \
            list(range(zero_chain(3).size))


class TestLinter:
    def test_clean_preset(self, tiny_vgg_train):
        report = lint_graph(tiny_vgg_train)
        assert report.ok
        assert report.errors == 0

    def test_dead_node_warning(self):
        report = lint_graph(graph_with_dead_branch())
        codes = [d.code for d in report.diagnostics]
        assert codes.count("R001") == 2
        assert report.ok  # warnings only

    def test_nan_cost_is_c001_error(self, tiny_vgg_train):
        costs = [tiny_vgg_train.cost(i) for i in range(tiny_vgg_train.size)]
        costs[0], costs[1] = float("nan"), float("inf")
        corrupted = tiny_vgg_train.with_costs(costs)
        report = lint_graph(corrupted)
        c001 = [d for d in report.diagnostics if d.code == "C001"]
        assert {d.node for d in c001} == {0, 1}
        assert not report.ok

    def test_mangled_grad_index_is_m001_error(self, tiny_vgg_train):
        meta = dict(tiny_vgg_train.meta)
        meta["grad_index"] = {0: 1}  # node 1 is a forward node, not a grad
        corrupted = DFGraph(
            nodes=tiny_vgg_train.nodes, deps=tiny_vgg_train.deps,
            input_memory=tiny_vgg_train.input_memory,
            parameter_memory=tiny_vgg_train.parameter_memory,
            name=tiny_vgg_train.name, meta=meta)
        report = lint_graph(corrupted)
        assert any(d.code == "M001" for d in report.diagnostics)
        assert not report.ok

    def test_truncated_op_types_is_m002_error(self, tiny_vgg_train):
        meta = dict(tiny_vgg_train.meta)
        meta["op_types"] = list(meta["op_types"])[:-2]
        corrupted = DFGraph(
            nodes=tiny_vgg_train.nodes, deps=tiny_vgg_train.deps,
            input_memory=tiny_vgg_train.input_memory,
            parameter_memory=tiny_vgg_train.parameter_memory,
            name=tiny_vgg_train.name, meta=meta)
        report = lint_graph(corrupted)
        m002 = [d for d in report.diagnostics if d.code == "M002"]
        assert m002 and "op_types" in m002[0].message

    def test_budget_below_floor_is_b001_warning(self, tiny_vgg_train):
        report = lint_graph(tiny_vgg_train, budget=1.0)
        assert any(d.code == "B001" for d in report.diagnostics)
        # An ample budget must not warn.
        ample = float(tiny_vgg_train.constant_overhead
                      + 2 * tiny_vgg_train.total_activation_memory())
        assert not any(d.code == "B001"
                       for d in lint_graph(tiny_vgg_train, budget=ample).diagnostics)

    def test_report_to_dict_shape(self):
        report = lint_graph(graph_with_dead_branch())
        payload = report.to_dict()
        assert set(payload) == {"graph", "nodes", "ok", "counts", "diagnostics"}
        assert payload["counts"]["warning"] == 2
        for diag in payload["diagnostics"]:
            assert set(diag) == {"code", "severity", "message", "node",
                                 "node_name"}

    def test_cached_lint_replays_same_report(self, tiny_vgg_train):
        first = lint_graph_cached(tiny_vgg_train, budget=1.0)
        second = lint_graph_cached(tiny_vgg_train, budget=1.0)
        assert second is first
        # A different budget is a different key.
        other = lint_graph_cached(tiny_vgg_train, budget=2.0)
        assert other is not first


class TestFormulationCacheSharing:
    def test_structurally_equal_graphs_compile_once(self, chain5_train):
        from repro.solvers.compiled import FormulationCache

        renamed = DFGraph(
            nodes=tuple(NodeInfo(f"y{i}", n.cost, n.memory, n.is_backward,
                                 n.layer_id)
                        for i, n in enumerate(chain5_train.nodes)),
            deps=chain5_train.deps,
            input_memory=chain5_train.input_memory,
            parameter_memory=chain5_train.parameter_memory,
            name="renamed-twin", meta={})
        cache = FormulationCache(max_entries=8)
        a = cache.get(chain5_train)
        b = cache.get(renamed)
        assert b is a  # shared compiled block
        stats = cache.stats()
        assert stats["compiles"] == 1
        assert stats["hits"] == 1

    def test_op_attrs_do_not_split_the_formulation_cache(self, chain5_train):
        # Satellite regression: attrs change plan identity, not formulation
        # identity.
        from repro.service.hashing import graph_content_hash
        from repro.solvers.compiled import FormulationCache

        variant_a = DFGraph(
            nodes=chain5_train.nodes, deps=chain5_train.deps,
            input_memory=chain5_train.input_memory,
            parameter_memory=chain5_train.parameter_memory,
            name=chain5_train.name,
            meta={"op_attrs": [{"stride": 1}]})
        variant_b = DFGraph(
            nodes=chain5_train.nodes, deps=chain5_train.deps,
            input_memory=chain5_train.input_memory,
            parameter_memory=chain5_train.parameter_memory,
            name=chain5_train.name,
            meta={"op_attrs": [{"stride": 2}]})
        # Content hashes (plan-cache keys) must differ: the executed
        # computation differs even though the schedule problem is identical.
        assert graph_content_hash(variant_a) != graph_content_hash(variant_b)
        # Structural hashes (formulation keys) must collide on purpose.
        assert (structural_graph_hash(variant_a)
                == structural_graph_hash(variant_b))
        cache = FormulationCache(max_entries=8)
        assert cache.get(variant_b) is cache.get(variant_a)


class TestServiceIntegration:
    def test_solve_canonicalized_matches_raw_objective(self):
        from repro.experiments.presets import build_training_graph
        from repro.service import SolveService

        graph = build_training_graph("deepblock")
        budget = tight_budget(graph, 0.8)
        service = SolveService()
        raw = service.solve(graph, "checkmate_ilp", budget)
        canon = service.solve_canonicalized(graph, "checkmate_ilp", budget)
        assert canon.feasible and raw.feasible
        assert canon.compute_cost == raw.compute_cost
        assert canon.matrices.num_nodes == graph.size
        analysis = canon.extra["analysis"]
        assert analysis["nodes_removed"] > 0
        assert analysis["decoded_peak_memory"] == analysis["optimized_peak_memory"]
        violations = validate_correctness_constraints(
            graph, canon.matrices, frontier_advancing=False)
        assert violations == []

    def test_solve_canonicalized_unchanged_graph_falls_through(self, chain5_train):
        from repro.service import SolveService

        service = SolveService()
        result = service.solve_canonicalized(chain5_train, "checkpoint_all")
        assert result.feasible
        assert service.stats.canonical_solves == 0  # no rewrite, plain solve

    def test_decoded_schedule_executes_bit_exact(self):
        from repro.execution import build_execution_report
        from repro.experiments.presets import (
            build_numeric_training_graph, build_training_graph)
        from repro.service import SolveService

        graph = build_training_graph("deepblock")
        budget = tight_budget(graph, 0.8)
        canon = SolveService().solve_canonicalized(
            graph, "checkmate_ilp", budget)
        numeric = build_numeric_training_graph("deepblock")
        report = build_execution_report(numeric, canon)
        assert report.executed
        assert report.outputs_match and report.max_abs_error == 0.0
        assert report.ok

    def test_lint_hook_counts_in_statistics(self, chain5_train):
        from repro.service import SolveService

        service = SolveService()
        service.solve(chain5_train, "checkpoint_all")
        snapshot = service.statistics()
        assert snapshot["analysis"]["lint_runs"] >= 1
        assert snapshot["analysis"]["lint_errors"] == 0

    def test_lint_hook_never_fails_a_solve(self, monkeypatch, chain5_train):
        import repro.service.solve as solve_mod
        from repro.service import SolveService

        def explode(*args, **kwargs):
            raise RuntimeError("lint meltdown")

        monkeypatch.setattr("repro.analysis.lint.lint_graph_cached", explode)
        service = SolveService()
        result = service.solve(chain5_train, "checkpoint_all")
        assert result.feasible  # advisory hook: the solve still lands
        assert solve_mod is not None
