"""Tests for layer arithmetic and the architecture zoo."""

import pytest

from repro.core.graph_utils import is_topological_order
from repro.models import (
    MODEL_REGISTRY,
    densenet,
    fcn8,
    get_model,
    linear_cnn,
    linear_mlp,
    mobilenet_v1,
    resnet50,
    resnet_tiny,
    segnet,
    unet,
    vgg16,
    vgg19,
)
from repro.models import layers as L
from repro.models.builder import INPUT, LayerGraphBuilder


class TestLayerMath:
    def test_conv_same_padding_shape(self):
        assert L.conv2d_output_shape((3, 32, 32), 16, 3, 1, "same") == (16, 32, 32)

    def test_conv_stride_shape(self):
        assert L.conv2d_output_shape((3, 32, 32), 16, 3, 2, "same") == (16, 16, 16)

    def test_conv_valid_padding_shape(self):
        assert L.conv2d_output_shape((3, 32, 32), 8, 5, 1, "valid") == (8, 28, 28)

    def test_conv_collapse_raises(self):
        with pytest.raises(ValueError):
            L.conv2d_output_shape((3, 2, 2), 8, 5, 1, "valid")

    def test_conv_flops_formula(self):
        flops = L.conv2d_flops((3, 32, 32), (16, 32, 32), 3)
        assert flops == 2 * 3 * 9 * 16 * 32 * 32

    def test_conv_params(self):
        assert L.conv2d_params(3, 16, 3, bias=True) == 3 * 16 * 9 + 16
        assert L.conv2d_params(3, 16, 3, bias=False) == 3 * 16 * 9

    def test_depthwise_flops_smaller_than_full(self):
        inp, out = (32, 16, 16), (32, 16, 16)
        assert L.depthwise_conv2d_flops(inp, out, 3) < L.conv2d_flops(inp, out, 3)

    def test_pooling_shape_and_flops(self):
        assert L.pool2d_output_shape((8, 32, 32), 2) == (8, 16, 16)
        assert L.pool2d_flops((8, 16, 16), 2) == 8 * 16 * 16 * 4

    def test_dense_formulas(self):
        assert L.dense_flops(100, 10) == 2000
        assert L.dense_params(100, 10) == 1010

    def test_concat_shape(self):
        assert L.concat_output_shape([(4, 8, 8), (6, 8, 8)]) == (10, 8, 8)

    def test_concat_mismatch_raises(self):
        with pytest.raises(ValueError):
            L.concat_output_shape([(4, 8, 8), (4, 4, 4)])

    def test_upsample_shape(self):
        assert L.upsample_output_shape((4, 8, 8), 2) == (4, 16, 16)

    def test_numel(self):
        assert L.numel((3, 4, 5)) == 60


class TestBuilder:
    def test_unknown_parent_rejected(self):
        b = LayerGraphBuilder("t", (3, 8, 8), 1)
        with pytest.raises(ValueError):
            b.conv("c", 5, 4)

    def test_invalid_batch_rejected(self):
        with pytest.raises(ValueError):
            LayerGraphBuilder("t", (3, 8, 8), 0)

    def test_empty_build_rejected(self):
        with pytest.raises(ValueError):
            LayerGraphBuilder("t", (3, 8, 8), 1).build()

    def test_memory_scales_with_batch(self):
        def build(batch):
            b = LayerGraphBuilder("t", (3, 8, 8), batch)
            b.conv("c", INPUT, 4)
            return b.build()
        assert build(4).memory(0) == 4 * build(1).memory(0)

    def test_add_shape_mismatch_rejected(self):
        b = LayerGraphBuilder("t", (3, 8, 8), 1)
        c1 = b.conv("c1", INPUT, 4)
        c2 = b.conv("c2", INPUT, 8)
        with pytest.raises(ValueError):
            b.add("bad", [c1, c2])

    def test_meta_populated(self):
        b = LayerGraphBuilder("t", (3, 8, 8), 2)
        b.conv("c", INPUT, 4)
        g = b.build()
        assert g.meta["batch_size"] == 2
        assert g.meta["op_types"] == ["conv2d"]
        assert g.meta["shapes"] == [(4, 8, 8)]
        assert g.parameter_memory == (3 * 4 * 9 + 4) * 4


class TestArchitectures:
    @pytest.mark.parametrize("name", sorted(MODEL_REGISTRY))
    def test_registry_models_build(self, name):
        kwargs = {"batch_size": 1}
        if name in ("unet", "fcn8", "segnet"):
            kwargs["resolution"] = (64, 64)
        elif name in ("linear_mlp",):
            kwargs["hidden_sizes"] = [16, 16, 16]
        elif name not in ("linear_cnn",):
            kwargs["resolution"] = 32
        if name in ("densenet121", "densenet161"):
            pytest.skip("large DenseNets are exercised separately")
        graph = MODEL_REGISTRY[name](**kwargs)
        assert graph.size > 3
        assert is_topological_order(graph)
        assert graph.sinks() == [graph.terminal_node]

    def test_get_model_normalizes_names(self):
        g = get_model("VGG-16", batch_size=1, resolution=32)
        assert "VGG16" in g.name

    def test_get_model_unknown(self):
        with pytest.raises(KeyError):
            get_model("alexnet9000")

    def test_vgg16_vs_vgg19_depth(self):
        v16 = vgg16(batch_size=1, resolution=32)
        v19 = vgg19(batch_size=1, resolution=32)
        assert v19.size > v16.size

    def test_vgg16_parameter_count_plausible(self):
        # The real VGG16 has ~138M parameters at 224x224 with a 1000-way head.
        g = vgg16(batch_size=1, resolution=224)
        params = g.parameter_memory / 4
        assert 1.2e8 < params < 1.6e8

    def test_vgg16_is_linear(self):
        assert vgg16(batch_size=1, resolution=32).is_linear_chain()

    def test_mobilenet_is_linear_and_cheaper_than_vgg(self):
        m = mobilenet_v1(batch_size=1, resolution=64)
        v = vgg16(batch_size=1, resolution=64)
        assert m.is_linear_chain()
        assert m.total_cost() < v.total_cost()

    def test_resnet_has_skip_connections(self):
        g = resnet_tiny(batch_size=1, resolution=16)
        assert not g.is_linear_chain()
        assert any(len(g.predecessors(j)) > 1 for j in range(g.size))

    def test_resnet50_block_count(self):
        g = resnet50(batch_size=1, resolution=64)
        adds = [n for n in g.nodes if n.name.endswith("_add")]
        assert len(adds) == 16  # 3 + 4 + 6 + 3 bottleneck blocks

    def test_unet_skip_concats(self):
        g = unet(batch_size=1, resolution=(64, 64), base_filters=8, depth=3)
        concats = [n for n in g.nodes if "skip" in n.name]
        assert len(concats) == 3
        assert not g.is_linear_chain()

    def test_fcn8_has_fusions(self):
        g = fcn8(batch_size=1, resolution=(64, 64))
        assert any("fuse" in n.name for n in g.nodes)
        assert not g.is_linear_chain()

    def test_segnet_decoder_mirrors_encoder(self):
        g = segnet(batch_size=1, resolution=(64, 64), encoder_cfg=[[8, 8], [16, 16]])
        names = [n.name for n in g.nodes]
        assert any(name.startswith("enc") for name in names)
        assert any(name.startswith("dec") for name in names)

    def test_densenet_concat_growth(self):
        g = densenet([2, 2], "tiny-densenet", growth_rate=4, batch_size=1,
                     resolution=32, init_channels=8)
        assert any("concat" in n.name for n in g.nodes)

    def test_linear_builders(self):
        mlp = linear_mlp([32, 32, 16], batch_size=2)
        cnn = linear_cnn(num_layers=4, batch_size=1, resolution=16, pool_every=2)
        assert mlp.is_linear_chain()
        assert cnn.is_linear_chain()

    def test_activation_memory_grows_with_resolution(self):
        small = vgg16(batch_size=1, resolution=32)
        large = vgg16(batch_size=1, resolution=64)
        assert large.total_activation_memory() > small.total_activation_memory()
