"""CLI smoke tests: ``repro`` subcommands driven through ``subprocess``.

The console script entry point is ``repro.cli:main`` (see setup.py); the
tests invoke it as ``python -m repro`` so they work without an installed
package, with ``PYTHONPATH`` pointing at the live source tree.
"""

from __future__ import annotations

import os
import subprocess
import sys

import pytest

import repro
from repro.cli import parse_budget
from repro.server import ServeClient, SolveServer


def run_cli(*args: str, timeout: float = 120.0) -> subprocess.CompletedProcess:
    src_dir = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env = dict(os.environ)
    env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run([sys.executable, "-m", "repro", *args],
                          capture_output=True, text=True, env=env,
                          timeout=timeout)


class TestParseBudget:
    def test_units(self):
        assert parse_budget("1024") == 1024
        assert parse_budget("512MiB") == 512 * 2**20
        assert parse_budget("2GiB") == 2 * 2**30
        assert parse_budget("1.5 GiB") == 1.5 * 2**30
        assert parse_budget("2GB") == 2 * 10**9

    def test_unbounded(self):
        assert parse_budget("none") is None
        assert parse_budget("unbounded") is None

    def test_rejects_garbage(self):
        import argparse
        with pytest.raises(argparse.ArgumentTypeError):
            parse_budget("a lot")
        with pytest.raises(argparse.ArgumentTypeError):
            parse_budget("12parsecs")


class TestCliOffline:
    def test_help(self):
        proc = run_cli("--help")
        assert proc.returncode == 0
        for sub in ("serve", "submit", "sweep", "status", "strategies"):
            assert sub in proc.stdout

    def test_strategies_local(self):
        proc = run_cli("strategies")
        assert proc.returncode == 0
        assert "checkmate_ilp" in proc.stdout
        assert "checkpoint_all" in proc.stdout

    def test_missing_graph_source_is_clean_usage_error(self):
        proc = run_cli("submit", "--strategy", "chen_sqrt_n")
        assert proc.returncode == 2
        assert "exactly one of --preset or --graph" in proc.stderr
        assert "Traceback" not in proc.stderr

    def test_unreachable_server_is_clean_error(self):
        proc = run_cli("status", "--server", "http://127.0.0.1:9",
                       "--http-timeout", "2")
        assert proc.returncode == 1
        assert "error" in proc.stderr.lower()

    def test_execute_local(self):
        proc = run_cli("execute", "--preset", "linear_mlp",
                       "--strategy", "checkmate_ilp",
                       "--budget-fraction", "0.7")
        assert proc.returncode == 0, proc.stderr
        assert "verdict         OK" in proc.stdout
        assert "within budget: True" in proc.stdout

    def test_execute_local_json(self):
        import json as json_mod
        proc = run_cli("execute", "--preset", "linear_mlp",
                       "--strategy", "checkpoint_all", "--json")
        assert proc.returncode == 0, proc.stderr
        report = json_mod.loads(proc.stdout)
        assert report["ok"] is True
        assert report["outputs_match"] is True

    def test_execute_rejects_conflicting_budgets(self):
        proc = run_cli("execute", "--preset", "linear_mlp",
                       "--strategy", "checkmate_ilp",
                       "--budget", "1GiB", "--budget-fraction", "0.5")
        assert proc.returncode == 2
        assert "at most one" in proc.stderr

    def test_execute_rejects_unknown_option_cleanly(self):
        proc = run_cli("execute", "--preset", "linear_mlp",
                       "--strategy", "checkmate_ilp",
                       "--option", "time_limit=60")  # typo for time_limit_s
        assert proc.returncode == 2
        assert "unknown solver options" in proc.stderr
        assert "time_limit_s" in proc.stderr  # the known list is shown
        assert "Traceback" not in proc.stderr

    def test_lint_clean_preset(self):
        proc = run_cli("lint", "--preset", "deepblock")
        assert proc.returncode == 0, proc.stderr
        assert "0 error(s)" in proc.stdout
        assert "C002" in proc.stdout  # the identity aliases are flagged

    def test_lint_json(self):
        import json as json_mod
        proc = run_cli("lint", "--preset", "linear_cnn",
                       "--budget-fraction", "0.8", "--json")
        assert proc.returncode == 0, proc.stderr
        report = json_mod.loads(proc.stdout)
        assert report["ok"] is True
        assert set(report["counts"]) == {"error", "warning", "info"}

    def test_lint_rejects_conflicting_budgets(self):
        proc = run_cli("lint", "--preset", "linear_cnn",
                       "--budget", "1GiB", "--budget-fraction", "0.5")
        assert proc.returncode == 2
        assert "at most one" in proc.stderr


class TestCliPareto:
    def test_pareto_local_table(self):
        proc = run_cli("pareto", "--preset", "linear_cnn")
        assert proc.returncode == 0, proc.stderr
        assert "pareto frontier of" in proc.stdout
        assert "solver calls" in proc.stdout
        assert "knee" in proc.stdout  # table header

    def test_pareto_local_json(self):
        import json as json_mod
        proc = run_cli("pareto", "--preset", "linear_cnn", "--json")
        assert proc.returncode == 0, proc.stderr
        front = json_mod.loads(proc.stdout)
        assert front["strategy"] == "checkmate_ilp"
        assert front["num_points"] == len(front["points"]) >= 2
        budgets = [p["budget"] for p in front["points"]]
        assert budgets == sorted(budgets)

    def test_pareto_rejects_unknown_option(self):
        proc = run_cli("pareto", "--preset", "linear_cnn",
                       "--option", "time_limit=60")
        assert proc.returncode == 2
        assert "unknown solver options" in proc.stderr


class TestCliAgainstServer:
    @pytest.fixture()
    def server(self):
        with SolveServer(port=0, num_workers=2) as srv:
            yield srv

    def test_submit_roundtrip(self, server, tmp_path):
        schedule_path = tmp_path / "plan.json"
        proc = run_cli("submit", "--server", server.url,
                       "--preset", "resnet_tiny", "--strategy", "ap_sqrt_n",
                       "--budget", "8GiB", "--save-schedule", str(schedule_path))
        assert proc.returncode == 0, proc.stderr
        assert "done" in proc.stdout
        assert schedule_path.exists()
        # The saved artifact is a loadable schedule.
        from repro.utils import schedule_from_json
        matrices = schedule_from_json(schedule_path.read_text())
        assert matrices.num_stages == matrices.num_nodes

    def test_sweep_and_status(self, server):
        proc = run_cli("sweep", "--server", server.url,
                       "--preset", "resnet_tiny",
                       "--strategies", "checkpoint_all,ap_sqrt_n",
                       "--budgets", "none,8GiB")
        assert proc.returncode == 0, proc.stderr
        assert "checkpoint-all" in proc.stdout

        proc = run_cli("status", "--server", server.url)
        assert proc.returncode == 0, proc.stderr
        assert "queue depth" in proc.stdout
        assert "solve latency" in proc.stdout

    def test_status_of_single_job(self, server):
        client = ServeClient(server.url)
        handle = client.submit_solve(preset="resnet_tiny",
                                     strategy="checkpoint_all")
        client.wait(handle["job_id"], timeout=60)
        proc = run_cli("status", "--server", server.url, handle["job_id"])
        assert proc.returncode == 0, proc.stderr
        assert "done" in proc.stdout

    def test_submit_infeasible_result_renders(self, server):
        # Infeasible results arrive with compute_cost=null over the wire;
        # the table must render them, not crash formatting None.
        proc = run_cli("submit", "--server", server.url,
                       "--preset", "resnet_tiny",
                       "--strategy", "linearized_greedy", "--budget", "1")
        assert proc.returncode == 0, proc.stderr
        assert "no (" in proc.stdout

    def test_submit_unknown_strategy_fails_cleanly(self, server):
        proc = run_cli("submit", "--server", server.url,
                       "--preset", "resnet_tiny", "--strategy", "nope")
        assert proc.returncode == 1
        assert "unknown solver" in proc.stderr

    def test_pareto_against_server(self, server):
        proc = run_cli("pareto", "--server", server.url,
                       "--preset", "linear_cnn")
        assert proc.returncode == 0, proc.stderr
        assert "pareto job" in proc.stdout
        assert "pareto frontier of" in proc.stdout

    def test_execute_against_server(self, server):
        import json as json_mod
        proc = run_cli("execute", "--server", server.url,
                       "--preset", "linear_mlp",
                       "--strategy", "checkmate_ilp",
                       "--budget-fraction", "0.7")
        assert proc.returncode == 0, proc.stderr
        report = json_mod.loads(proc.stdout.split("\n", 1)[1])
        assert report["ok"] is True
        assert report["within_budget"] is True
