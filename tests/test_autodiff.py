"""Tests for the backward-graph (training graph) construction."""

import pytest

from repro.autodiff import BackwardConfig, make_training_graph
from repro.core import linear_graph
from repro.core.graph_utils import is_topological_order


class TestStructure:
    def test_doubles_node_count(self, chain5):
        train = make_training_graph(chain5)
        assert train.size == 2 * chain5.size

    def test_topological_order_preserved(self, chain5, diamond_graph):
        for g in (chain5, diamond_graph):
            assert is_topological_order(make_training_graph(g))

    def test_grad_index_metadata(self, chain5):
        train = make_training_graph(chain5)
        grad_index = train.meta["grad_index"]
        assert train.meta["n_forward"] == chain5.size
        assert sorted(grad_index.keys()) == list(range(chain5.size))
        # Gradients are appended in reverse forward order.
        assert grad_index[chain5.size - 1] == chain5.size
        assert grad_index[0] == train.size - 1

    def test_backward_nodes_flagged(self, chain5):
        train = make_training_graph(chain5)
        assert train.forward_nodes() == list(range(chain5.size))
        assert train.backward_nodes() == list(range(chain5.size, train.size))

    def test_gradient_names(self, chain5):
        train = make_training_graph(chain5)
        grad_of_last = train.nodes[chain5.size]
        assert grad_of_last.name.startswith("grad_")


class TestDependencies:
    def test_chain_gradient_ladder(self, chain5):
        train = make_training_graph(chain5)
        gi = train.meta["grad_index"]
        n = chain5.size
        # grad of the loss node depends only on the loss node itself.
        assert train.predecessors(gi[n - 1]) == (n - 1,)
        # grad of an interior node i depends on grad of i+1 and saved activations.
        deps = set(train.predecessors(gi[2]))
        assert gi[3] in deps
        assert 2 in deps  # own activation (input of the consumer)

    def test_consumer_output_dependency_toggle(self, chain5):
        with_out = make_training_graph(chain5, BackwardConfig(grad_needs_consumer_output=True))
        without = make_training_graph(chain5, BackwardConfig(grad_needs_consumer_output=False))
        gi = with_out.meta["grad_index"]
        assert 3 in with_out.predecessors(gi[2])      # consumer's own output saved
        assert 3 not in without.predecessors(gi[2])

    def test_diamond_gradient_fan_in(self, diamond_graph):
        train = make_training_graph(diamond_graph)
        gi = train.meta["grad_index"]
        # Node 0 has two users (1 and 3), so its gradient consumes both their gradients.
        deps = set(train.predecessors(gi[0]))
        assert gi[1] in deps and gi[3] in deps


class TestCostsAndMemory:
    def test_gradient_memory_matches_forward(self, chain5):
        train = make_training_graph(chain5)
        gi = train.meta["grad_index"]
        for i in range(chain5.size):
            assert train.memory(gi[i]) == chain5.memory(i)

    def test_backward_cost_scales_with_factor(self, chain5):
        low = make_training_graph(chain5, BackwardConfig(backward_cost_factor=1.0))
        high = make_training_graph(chain5, BackwardConfig(backward_cost_factor=3.0))
        assert high.backward_cost() == pytest.approx(3.0 * low.backward_cost())

    def test_total_backward_cost_close_to_factor_times_forward(self):
        fwd = linear_graph(10, cost=[float(i + 1) for i in range(10)], memory=4)
        train = make_training_graph(fwd, BackwardConfig(backward_cost_factor=2.0))
        # Backward cost is distributed per consumer, so the total matches 2x the
        # forward cost of all *consumed* nodes plus the loss seed.
        assert train.backward_cost() == pytest.approx(2.0 * fwd.total_cost(), rel=0.25)

    def test_parameter_and_input_memory_carried_over(self, chain5):
        g = chain5
        g2 = type(g)(nodes=g.nodes, deps=g.deps, input_memory=7, parameter_memory=11)
        train = make_training_graph(g2)
        assert train.input_memory == 7
        assert train.parameter_memory == 11
        assert train.constant_overhead == 7 + 22
