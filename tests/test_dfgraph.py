"""Unit tests for the data-flow graph substrate."""

import numpy as np
import pytest

from repro.core import DFGraph, GraphError, NodeInfo, linear_graph


def make_simple() -> DFGraph:
    nodes = [NodeInfo("a", 1.0, 4), NodeInfo("b", 2.0, 8), NodeInfo("c", 3.0, 16)]
    return DFGraph(nodes=nodes, deps={0: [], 1: [0], 2: [0, 1]},
                   input_memory=10, parameter_memory=20, name="simple")


class TestConstruction:
    def test_size_and_len(self):
        g = make_simple()
        assert g.size == 3
        assert len(g) == 3

    def test_deps_are_sorted_tuples(self):
        g = make_simple()
        assert g.predecessors(2) == (0, 1)
        assert g.predecessors(0) == ()

    def test_users_are_derived(self):
        g = make_simple()
        assert g.successors(0) == (1, 2)
        assert g.successors(2) == ()

    def test_duplicate_parents_are_deduplicated(self):
        g = DFGraph(nodes=[NodeInfo("a", 1, 1), NodeInfo("b", 1, 1)], deps={1: [0, 0]})
        assert g.predecessors(1) == (0,)

    def test_forward_dependency_rejected(self):
        with pytest.raises(GraphError):
            DFGraph(nodes=[NodeInfo("a", 1, 1), NodeInfo("b", 1, 1)], deps={0: [1], 1: []})

    def test_self_dependency_rejected(self):
        with pytest.raises(GraphError):
            DFGraph(nodes=[NodeInfo("a", 1, 1)], deps={0: [0]})

    def test_out_of_range_dependency_rejected(self):
        with pytest.raises(GraphError):
            DFGraph(nodes=[NodeInfo("a", 1, 1)], deps={0: [5]})

    def test_negative_cost_rejected(self):
        with pytest.raises(GraphError):
            DFGraph(nodes=[NodeInfo("a", -1.0, 1)], deps={0: []})

    def test_negative_memory_rejected(self):
        with pytest.raises(GraphError):
            DFGraph(nodes=[NodeInfo("a", 1.0, -5)], deps={0: []})


class TestAccessors:
    def test_cost_and_memory_vectors(self):
        g = make_simple()
        assert np.allclose(g.cost_vector, [1.0, 2.0, 3.0])
        assert np.allclose(g.memory_vector, [4, 8, 16])

    def test_scalar_accessors(self):
        g = make_simple()
        assert g.cost(1) == 2.0
        assert g.memory(2) == 16

    def test_vectors_are_copies(self):
        g = make_simple()
        v = g.cost_vector
        v[0] = 999
        assert g.cost(0) == 1.0

    def test_edges_and_edge_count(self):
        g = make_simple()
        assert set(g.edges()) == {(0, 1), (0, 2), (1, 2)}
        assert g.num_edges == 3
        assert g.edge_list == sorted(g.edge_list)

    def test_constant_overhead(self):
        g = make_simple()
        assert g.constant_overhead == 10 + 2 * 20

    def test_sources_and_sinks(self):
        g = make_simple()
        assert g.sources() == [0]
        assert g.sinks() == [2]
        assert g.terminal_node == 2

    def test_total_cost_and_memory(self):
        g = make_simple()
        assert g.total_cost() == 6.0
        assert g.total_activation_memory() == 28

    def test_max_degree(self):
        g = make_simple()
        assert g.max_degree() == 2  # every node touches exactly two edges


class TestForwardBackwardSplit:
    def test_forward_nodes_default(self):
        g = make_simple()
        assert g.forward_nodes() == [0, 1, 2]
        assert g.backward_nodes() == []

    def test_backward_flagged_nodes(self):
        nodes = [NodeInfo("f", 1, 1), NodeInfo("g", 1, 1, is_backward=True)]
        g = DFGraph(nodes=nodes, deps={1: [0]})
        assert g.forward_nodes() == [0]
        assert g.backward_nodes() == [1]
        assert g.forward_cost() == 1.0
        assert g.backward_cost() == 1.0


class TestTransformations:
    def test_with_costs(self):
        g = make_simple()
        g2 = g.with_costs([5.0, 6.0, 7.0])
        assert g2.total_cost() == 18.0
        assert g.total_cost() == 6.0  # original untouched
        assert g2.predecessors(2) == g.predecessors(2)

    def test_with_costs_wrong_length(self):
        with pytest.raises(GraphError):
            make_simple().with_costs([1.0])

    def test_with_memories(self):
        g2 = make_simple().with_memories([1, 1, 1])
        assert g2.total_activation_memory() == 3

    def test_with_memories_wrong_length(self):
        with pytest.raises(GraphError):
            make_simple().with_memories([1, 2])

    def test_scaled_batch_factor(self):
        g = make_simple()
        g2 = g.scaled(2.0)
        assert np.allclose(g2.cost_vector, 2 * g.cost_vector)
        assert g2.total_activation_memory() == 2 * g.total_activation_memory()
        assert g2.input_memory == 2 * g.input_memory
        assert g2.parameter_memory == g.parameter_memory  # batch independent

    def test_induced_subgraph(self):
        g = make_simple()
        sub = g.induced_subgraph([0, 2])
        assert sub.size == 2
        # edge 0->2 is preserved, edge through the dropped node 1 is not re-created
        assert set(sub.edges()) == {(0, 1)}
        assert sub.nodes[1].name == "c"

    def test_to_networkx(self):
        nx_graph = make_simple().to_networkx()
        assert nx_graph.number_of_nodes() == 3
        assert nx_graph.number_of_edges() == 3
        assert nx_graph.nodes[1]["name"] == "b"


class TestLinearChain:
    def test_is_linear_chain_true(self):
        assert linear_graph(4).is_linear_chain()

    def test_is_linear_chain_false(self):
        assert not make_simple().is_linear_chain()

    def test_summary_mentions_name(self):
        assert "simple" in make_simple().summary()
