"""Tests for the baseline heuristics of Table 1 and their generalizations."""

import pytest

from helpers import ample_budget, tight_budget

from repro.baselines import (
    STRATEGIES,
    ap_candidates,
    chen_greedy_checkpoints,
    chen_sqrt_n_checkpoints,
    get_strategy,
    revolve_storage_timeline,
    segment_checkpoint_schedule,
    solve_checkpoint_all,
    solve_chen_greedy,
    solve_chen_sqrt_n,
    solve_griewank_logn,
    training_graph_metadata,
)
from repro.core import schedule_peak_memory, validate_correctness_constraints
from repro.solvers import solve_ilp_rematerialization


class TestSelection:
    def test_sqrt_n_checkpoint_count(self, tiny_vgg_train):
        ckpts = chen_sqrt_n_checkpoints(tiny_vgg_train)
        n_fwd = tiny_vgg_train.meta["n_forward"]
        assert 1 <= len(ckpts) <= n_fwd
        assert all(0 <= c < n_fwd for c in ckpts)

    def test_sqrt_n_empty_candidates(self, tiny_vgg_train):
        assert chen_sqrt_n_checkpoints(tiny_vgg_train, candidates=[]) == set()

    def test_greedy_budget_controls_count(self, tiny_vgg_train):
        small_b = chen_greedy_checkpoints(tiny_vgg_train, 1.0)
        huge_b = chen_greedy_checkpoints(tiny_vgg_train, 1e15)
        assert len(small_b) >= len(huge_b)
        assert len(huge_b) == 0

    def test_ap_candidates_linear_graph(self, tiny_vgg_train):
        # On a linear network nearly every forward node is an articulation point.
        aps = ap_candidates(tiny_vgg_train)
        n_fwd = tiny_vgg_train.meta["n_forward"]
        assert len(aps) >= n_fwd // 2

    def test_ap_candidates_skip_connections(self, tiny_unet_train):
        aps = ap_candidates(tiny_unet_train)
        n_fwd = tiny_unet_train.meta["n_forward"]
        # U-Net's long skips leave only a handful of articulation points.
        assert len(aps) < n_fwd // 2

    def test_metadata_required(self, chain5):
        with pytest.raises(ValueError):
            training_graph_metadata(chain5)


class TestSegmentSchedule:
    def test_valid_for_arbitrary_checkpoints(self, tiny_vgg_train):
        ckpts = chen_sqrt_n_checkpoints(tiny_vgg_train)
        m = segment_checkpoint_schedule(tiny_vgg_train, ckpts)
        assert validate_correctness_constraints(tiny_vgg_train, m) == []

    def test_cost_close_to_one_extra_forward_pass(self, tiny_vgg_train):
        ckpts = chen_sqrt_n_checkpoints(tiny_vgg_train)
        m = segment_checkpoint_schedule(tiny_vgg_train, ckpts)
        extra = m.R.sum() - tiny_vgg_train.size
        n_fwd = tiny_vgg_train.meta["n_forward"]
        assert extra <= n_fwd + 2  # at most ~one extra forward pass of evaluations

    def test_fewer_checkpoints_less_memory(self, tiny_vgg_train):
        few = segment_checkpoint_schedule(tiny_vgg_train, chen_sqrt_n_checkpoints(tiny_vgg_train))
        all_ckpt = segment_checkpoint_schedule(
            tiny_vgg_train, range(tiny_vgg_train.meta["n_forward"] - 1))
        assert schedule_peak_memory(tiny_vgg_train, few) \
            <= schedule_peak_memory(tiny_vgg_train, all_ckpt)

    def test_invalid_checkpoint_rejected(self, tiny_vgg_train):
        with pytest.raises(ValueError):
            segment_checkpoint_schedule(tiny_vgg_train, {tiny_vgg_train.size + 5})


class TestStrategyDrivers:
    def test_checkpoint_all_no_recompute(self, tiny_vgg_train):
        r = solve_checkpoint_all(tiny_vgg_train)
        assert r.feasible and r.overhead == pytest.approx(1.0, rel=1e-9)

    def test_checkpoint_all_over_budget_flagged(self, tiny_vgg_train):
        r = solve_checkpoint_all(tiny_vgg_train, budget=tiny_vgg_train.constant_overhead + 10)
        assert not r.feasible

    def test_sqrt_n_saves_memory_over_checkpoint_all(self, tiny_vgg_train):
        all_r = solve_checkpoint_all(tiny_vgg_train)
        sqrt_r = solve_chen_sqrt_n(tiny_vgg_train)
        assert sqrt_r.feasible
        assert sqrt_r.peak_memory <= all_r.peak_memory
        assert sqrt_r.compute_cost >= all_r.compute_cost

    def test_greedy_search_improves_with_budget(self, tiny_vgg_train):
        loose = solve_chen_greedy(tiny_vgg_train, ample_budget(tiny_vgg_train))
        tight = solve_chen_greedy(tiny_vgg_train, tight_budget(tiny_vgg_train, 0.7))
        assert loose.feasible
        if tight.feasible:
            assert tight.compute_cost >= loose.compute_cost - 1e-9

    def test_greedy_records_search_trace(self, tiny_vgg_train):
        r = solve_chen_greedy(tiny_vgg_train, ample_budget(tiny_vgg_train))
        assert "search" in r.extra and len(r.extra["search"]) > 1

    def test_ap_variants_valid_on_nonlinear(self, tiny_unet_train):
        for key in ("ap_sqrt_n", "ap_greedy", "linearized_sqrt_n", "linearized_greedy"):
            result = STRATEGIES[key].solve(tiny_unet_train, ample_budget(tiny_unet_train))
            assert result.feasible
            assert validate_correctness_constraints(tiny_unet_train, result.matrices) == []

    def test_resnet_ap_variants_valid(self, tiny_resnet_train):
        result = STRATEGIES["ap_sqrt_n"].solve(tiny_resnet_train, ample_budget(tiny_resnet_train))
        assert result.feasible


class TestGriewank:
    def test_storage_timeline_slots_respected(self):
        order, storage = revolve_storage_timeline(16, slots=3)
        assert order == list(range(15, -1, -1))
        # At any backward position, at most `slots` snapshots are held.
        for pos in range(16):
            held = sum(1 for intervals in storage.values()
                       for (a, b) in intervals if a <= pos <= b)
            assert held <= 3

    def test_storage_timeline_single_slot(self):
        order, storage = revolve_storage_timeline(8, slots=1)
        assert order == list(range(7, -1, -1))

    def test_griewank_valid_on_linear(self, tiny_vgg_train):
        r = solve_griewank_logn(tiny_vgg_train)
        assert r.feasible
        assert validate_correctness_constraints(tiny_vgg_train, r.matrices) == []

    def test_griewank_rejects_nonlinear(self, tiny_unet_train):
        with pytest.raises(ValueError):
            solve_griewank_logn(tiny_unet_train)

    def test_griewank_trades_compute_for_memory(self, varied_chain_train):
        gw = solve_griewank_logn(varied_chain_train, slots=2)
        ca = solve_checkpoint_all(varied_chain_train)
        assert gw.compute_cost > ca.compute_cost
        assert gw.peak_memory <= ca.peak_memory

    def test_more_slots_less_recomputation(self, varied_chain_train):
        few = solve_griewank_logn(varied_chain_train, slots=1)
        many = solve_griewank_logn(varied_chain_train, slots=6)
        assert many.compute_cost <= few.compute_cost


class TestRegistry:
    def test_all_strategies_present(self):
        expected = {"checkpoint_all", "chen_sqrt_n", "chen_greedy", "griewank_logn",
                    "ap_sqrt_n", "ap_greedy", "linearized_sqrt_n", "linearized_greedy",
                    "checkmate_ilp", "checkmate_approx"}
        assert expected == set(STRATEGIES)

    def test_only_checkmate_is_fully_aware(self):
        for key, info in STRATEGIES.items():
            fully_aware = (info.general_graphs is True and info.cost_aware is True
                           and info.memory_aware is True)
            assert fully_aware == key.startswith("checkmate")

    def test_get_strategy_error(self):
        with pytest.raises(KeyError):
            get_strategy("nope")

    def test_ilp_beats_or_matches_heuristics(self, varied_chain_train):
        budget = tight_budget(varied_chain_train, 0.6)
        ilp = solve_ilp_rematerialization(varied_chain_train, budget)
        assert ilp.feasible
        for key in ("chen_sqrt_n", "linearized_greedy", "griewank_logn"):
            result = STRATEGIES[key].solve(varied_chain_train, budget)
            if result.feasible and result.peak_memory <= budget:
                assert ilp.compute_cost <= result.compute_cost + 1e-9
