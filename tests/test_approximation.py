"""Tests for the LP relaxation, two-phase rounding and min-R completion."""

import numpy as np
import pytest

from helpers import ample_budget, tight_budget

from repro.core import (
    checkpoint_all_schedule,
    schedule_compute_cost,
    schedule_peak_memory,
    validate_correctness_constraints,
)
from repro.solvers import (
    checkpoint_set_to_schedule,
    naive_rounding_feasibility,
    randomized_rounding_samples,
    solve_approx_lp_rounding,
    solve_ilp_rematerialization,
    solve_lp_relaxation,
    solve_min_r,
    two_phase_round,
)


class TestMinR:
    def test_empty_checkpoints_recompute_everything_needed(self, chain5_train):
        n = chain5_train.size
        result = solve_min_r(chain5_train, np.zeros((n, n)))
        assert validate_correctness_constraints(chain5_train, result) == []
        # With no checkpoints, later stages must recompute long dependency chains.
        assert result.total_evaluations() > n

    def test_full_checkpoints_compute_once(self, chain5_train):
        full = checkpoint_all_schedule(chain5_train)
        result = solve_min_r(chain5_train, full.S)
        assert result.total_evaluations() == chain5_train.size

    def test_minimality_every_one_is_forced(self, diamond_train):
        # Removing any R entry (other than the diagonal) from the min-R solution
        # must violate a constraint -- i.e. the completion is minimal.
        n = diamond_train.size
        S = np.zeros((n, n), dtype=np.uint8)
        S[3:, 2] = 1
        result = solve_min_r(diamond_train, S)
        base_violations = validate_correctness_constraints(diamond_train, result)
        assert base_violations == []
        R = result.R
        for t in range(n):
            for i in range(t):
                if R[t, i]:
                    mutated = result.copy()
                    mutated.R[t, i] = 0
                    assert validate_correctness_constraints(diamond_train, mutated), \
                        f"R[{t},{i}] was not necessary"

    def test_bad_shape_rejected(self, chain5_train):
        with pytest.raises(ValueError):
            solve_min_r(chain5_train, np.zeros((3, 3)))

    def test_checkpoint_set_to_schedule_valid(self, chain5_train):
        m = checkpoint_set_to_schedule(chain5_train, {2, 4})
        assert validate_correctness_constraints(chain5_train, m) == []

    def test_checkpoint_set_out_of_range(self, chain5_train):
        with pytest.raises(ValueError):
            checkpoint_set_to_schedule(chain5_train, {999})


class TestLPRelaxation:
    def test_fractional_solution_in_bounds(self, varied_chain_train):
        lp = solve_lp_relaxation(varied_chain_train, tight_budget(varied_chain_train, 0.6))
        assert lp.feasible
        assert np.all(lp.R_fractional >= -1e-8) and np.all(lp.R_fractional <= 1 + 1e-8)
        assert np.all(lp.S_fractional >= -1e-8) and np.all(lp.S_fractional <= 1 + 1e-8)

    def test_objective_at_least_ideal_cost(self, varied_chain_train):
        lp = solve_lp_relaxation(varied_chain_train, tight_budget(varied_chain_train, 0.6))
        assert lp.objective >= varied_chain_train.total_cost() - 1e-6

    def test_infeasible_budget(self, chain5_train):
        lp = solve_lp_relaxation(chain5_train, 1)
        assert not lp.feasible
        assert lp.R_fractional is None


class TestTwoPhaseRounding:
    def test_deterministic_rounding_valid(self, varied_chain_train):
        lp = solve_lp_relaxation(varied_chain_train, tight_budget(varied_chain_train, 0.6))
        m = two_phase_round(varied_chain_train, lp.S_fractional, mode="deterministic")
        assert validate_correctness_constraints(varied_chain_train, m) == []

    def test_randomized_rounding_valid(self, varied_chain_train):
        lp = solve_lp_relaxation(varied_chain_train, tight_budget(varied_chain_train, 0.6))
        rng = np.random.default_rng(0)
        m = two_phase_round(varied_chain_train, lp.S_fractional, mode="randomized", rng=rng)
        assert validate_correctness_constraints(varied_chain_train, m) == []

    def test_unknown_mode_rejected(self, varied_chain_train):
        with pytest.raises(ValueError):
            two_phase_round(varied_chain_train, np.zeros((2, 2)), mode="magic")

    def test_approx_within_budget_and_valid(self, varied_chain_train):
        budget = tight_budget(varied_chain_train, 0.6)
        result = solve_approx_lp_rounding(varied_chain_train, budget)
        assert result.feasible
        assert schedule_peak_memory(varied_chain_train, result.matrices) <= budget
        assert validate_correctness_constraints(varied_chain_train, result.matrices) == []

    def test_approx_never_beats_ilp(self, varied_chain_train):
        budget = tight_budget(varied_chain_train, 0.6)
        approx = solve_approx_lp_rounding(varied_chain_train, budget)
        ilp = solve_ilp_rematerialization(varied_chain_train, budget)
        assert approx.compute_cost >= ilp.compute_cost - 1e-9

    def test_approx_close_to_optimal_on_chain(self, varied_chain_train):
        # Table 2: two-phase deterministic rounding is within a few percent of optimal.
        budget = tight_budget(varied_chain_train, 0.6)
        approx = solve_approx_lp_rounding(varied_chain_train, budget)
        ilp = solve_ilp_rematerialization(varied_chain_train, budget)
        assert approx.compute_cost / ilp.compute_cost < 1.5

    def test_allowance_validation(self, varied_chain_train):
        with pytest.raises(ValueError):
            solve_approx_lp_rounding(varied_chain_train, 100, allowance=1.5)

    def test_infeasible_lp_propagates(self, chain5_train):
        result = solve_approx_lp_rounding(chain5_train, chain5_train.constant_overhead + 1)
        assert not result.feasible

    def test_reuses_precomputed_lp(self, varied_chain_train):
        budget = ample_budget(varied_chain_train)
        lp = solve_lp_relaxation(varied_chain_train, budget * 0.9)
        result = solve_approx_lp_rounding(varied_chain_train, budget, lp_result=lp)
        assert result.feasible
        assert result.extra["lp_objective"] == lp.objective


class TestRoundingStudies:
    def test_randomized_samples_reported(self, varied_chain_train):
        budget = tight_budget(varied_chain_train, 0.7)
        lp = solve_lp_relaxation(varied_chain_train, budget * 0.9)
        samples = randomized_rounding_samples(varied_chain_train, budget, lp,
                                              num_samples=5, seed=1)
        assert len(samples) == 5
        for s in samples:
            assert s.compute_cost >= varied_chain_train.total_cost() - 1e-9
            assert validate_correctness_constraints(varied_chain_train, s.matrices) == []

    def test_naive_rounding_rarely_feasible(self, varied_chain_train):
        # Section 5.1: naive rounding of the full fractional solution is
        # essentially never dependency-feasible, let alone budget-feasible.
        budget = tight_budget(varied_chain_train, 0.55)
        lp = solve_lp_relaxation(varied_chain_train, budget)
        stats = naive_rounding_feasibility(varied_chain_train, budget, lp,
                                           mode="randomized", num_samples=100, seed=0)
        assert stats["num_samples"] == 100
        assert stats["num_feasible"] <= 2  # the paper observes exactly 0

    def test_naive_deterministic_single_sample(self, varied_chain_train):
        budget = tight_budget(varied_chain_train, 0.55)
        lp = solve_lp_relaxation(varied_chain_train, budget)
        stats = naive_rounding_feasibility(varied_chain_train, budget, lp, mode="deterministic")
        assert stats["num_samples"] == 1
