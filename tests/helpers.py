"""Plain helper functions shared by test modules.

These live outside ``conftest.py`` on purpose: conftest files are pytest
plugin hooks, not importable libraries, and importing ``from conftest``
resolves against whichever conftest happens to be first on ``sys.path``
(historically the ``benchmarks/`` one shadowed ``tests/``).  Test modules
import budget helpers from here instead.
"""

from __future__ import annotations

from repro.core import DFGraph


def ample_budget(graph: DFGraph) -> int:
    """A budget large enough that no rematerialization is ever needed."""
    return int(graph.constant_overhead + graph.total_activation_memory() * 2 + 10)


def tight_budget(graph: DFGraph, fraction: float = 0.5) -> int:
    """A budget at ``fraction`` of the retained-activation footprint."""
    return int(graph.constant_overhead + graph.total_activation_memory() * fraction)
