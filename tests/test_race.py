"""Deadline, cancellation and cache-hygiene tests for the race meta-solver."""

from __future__ import annotations

import threading
import time
from types import SimpleNamespace

import pytest

from repro.core import random_layered_dag, schedule_peak_memory
from repro.service import SolveService, SolverOptions, default_registry
from repro.service.cache import PlanCache
from repro.service.registry import SolverSpec
from repro.service.solve import _cacheable
from repro.solvers import DEFAULT_ENTRANTS, build_scheduled_result, solve_race

from helpers import tight_budget

_TOL = 1e-6


def _graph(seed: int = 7, layers: int = 5, width: int = 2):
    return random_layered_dag(layers, width, seed=seed,
                              name=f"race-{layers}x{width}-s{seed}")


def _slow_stub_registry(max_sleep_s: float = 30.0, poll_s: float = 0.02):
    """Default registry plus a cooperative stub that stalls until cancelled."""
    registry = default_registry().copy()

    def slow_solve(graph, budget=None, *, should_cancel=None, **_kwargs):
        start = time.monotonic()
        while time.monotonic() - start < max_sleep_s:
            if should_cancel is not None and should_cancel():
                return build_scheduled_result(
                    "slow_stub", graph, None, budget=int(budget),
                    feasible=False,
                    solve_time_s=time.monotonic() - start,
                    solver_status="stub-cancelled")
            time.sleep(poll_s)
        raise AssertionError("slow stub ran to its full sleep: cancel never fired")

    registry.register(SolverSpec(
        key="slow_stub",
        description="Test stub: sleeps forever, polling should_cancel.",
        solve=slow_solve,
        option_map={},
        accepts_should_cancel=True,
    ))
    return registry


def _race_threads():
    return [t for t in threading.enumerate()
            if t.name.startswith("repro-race") and t.is_alive()]


def test_race_returns_best_so_far_under_slow_entrant():
    """A stalled entrant must not block the race past its deadline."""
    graph = _graph()
    budget = tight_budget(graph, 0.6)
    registry = _slow_stub_registry()

    start = time.monotonic()
    result = solve_race(graph, budget, deadline_s=3.0,
                        entrants=("approx_fixed_half", "slow_stub"),
                        registry=registry, generate_plan=False)
    elapsed = time.monotonic() - start

    assert result.feasible, result.solver_status
    assert schedule_peak_memory(graph, result.matrices) <= budget
    race = result.extra["race"]
    assert race["winner"] == "approx_fixed_half"
    assert race["deadline_hit"] is True
    # The stub either got reaped mid-sleep or was cancelled before starting.
    stub_lane = next(l for l in race["entrants"] if l["strategy"] == "slow_stub")
    assert "cancelled" in stub_lane["status"]
    assert not stub_lane["feasible"]
    # Deadline plus the stub's poll latency plus join slack, nowhere near 30 s.
    assert elapsed < 10.0, f"race overran its deadline: {elapsed:.1f}s"
    assert _race_threads() == []


def test_race_deadline_zero_is_honored_literally():
    """``deadline_s=0`` starts nothing and reports the deadline as exhausted."""
    graph = _graph()
    budget = tight_budget(graph, 0.6)
    result = solve_race(graph, budget, deadline_s=0.0, generate_plan=False)
    assert not result.feasible
    assert result.solver_status == "race-deadline-exhausted"
    race = result.extra["race"]
    assert race["deadline_hit"] is True
    assert race["winner"] is None
    assert all(lane["status"] == "not-started" for lane in race["entrants"])
    assert _race_threads() == []


def test_race_caller_cancel_returns_best_so_far_or_cancelled_verdict():
    """A caller cancel reaps the pool; banked results still win."""
    graph = _graph()
    budget = tight_budget(graph, 0.6)
    registry = _slow_stub_registry()
    fired = threading.Event()

    # Let the fast entrant land, then cancel while the stub is still asleep.
    def should_cancel():
        return fired.is_set()

    def fire_later():
        time.sleep(1.0)
        fired.set()

    trigger = threading.Thread(target=fire_later)
    trigger.start()
    try:
        result = solve_race(graph, budget, deadline_s=60.0,
                            entrants=("approx_fixed_half", "slow_stub"),
                            registry=registry, generate_plan=False,
                            should_cancel=should_cancel)
    finally:
        trigger.join()

    race = result.extra["race"]
    assert race["cancelled"] is True
    assert race["deadline_hit"] is False
    if result.feasible:
        assert race["winner"] == "approx_fixed_half"
    else:
        assert result.solver_status == "race-cancelled"
    assert _race_threads() == []


def test_race_objective_not_worse_than_any_entrant():
    """With a generous deadline the race must match its best entrant."""
    graph = _graph()
    budget = tight_budget(graph, 0.6)
    registry = default_registry()
    race = solve_race(graph, budget, deadline_s=120.0, seed=0,
                      num_samples=4, generate_plan=False, registry=registry)
    assert race.feasible, race.solver_status

    options = SolverOptions(num_samples=4, seed=0, generate_plan=False)
    for key in DEFAULT_ENTRANTS:
        spec = registry.get(key)
        entrant = spec.solve(graph, budget, **options.kwargs_for(spec.option_map))
        if entrant.feasible:
            assert race.compute_cost <= entrant.compute_cost + _TOL, \
                f"race ({race.compute_cost}) worse than {key} " \
                f"({entrant.compute_cost})"


def test_race_argument_validation():
    graph = _graph()
    budget = tight_budget(graph, 0.6)
    with pytest.raises(ValueError, match="memory budget"):
        solve_race(graph, None)
    with pytest.raises(ValueError, match="at least one entrant"):
        solve_race(graph, budget, entrants=())
    with pytest.raises(ValueError, match="race itself"):
        solve_race(graph, budget, entrants=("race",))


# --------------------------------------------------------------------------- #
# Plan-cache hygiene
# --------------------------------------------------------------------------- #
def test_race_deadline_exhausted_verdict_is_not_cached():
    """A load-dependent no-schedule verdict must not poison the plan cache."""
    service = SolveService(cache=PlanCache(max_entries=8))
    graph = _graph()
    budget = tight_budget(graph, 0.6)
    options = SolverOptions(deadline_s=0.0, generate_plan=False)
    for _ in range(2):
        result = service.solve(graph, "race", budget, options)
        assert not result.feasible
        assert result.solver_status == "race-deadline-exhausted"
    assert service.stats.solver_calls == 2, "second solve replayed from cache"
    assert service.stats.cache_hits == 0
    assert len(service.cache) == 0


def test_feasible_race_result_is_cached_per_deadline():
    """Feasible races cache normally, keyed by their deadline (no aliasing)."""
    service = SolveService(cache=PlanCache(max_entries=8))
    graph = _graph()
    budget = tight_budget(graph, 0.6)
    entrants = ("approx_fixed_half",)

    first = service.solve(graph, "race", budget, SolverOptions(
        deadline_s=60.0, entrants=entrants, generate_plan=False))
    again = service.solve(graph, "race", budget, SolverOptions(
        deadline_s=60.0, entrants=entrants, generate_plan=False))
    assert first.feasible and again.feasible
    assert service.stats.solver_calls == 1
    assert service.stats.cache_hits == 1

    # A different SLO is a different cache cell: deadline_s is in the race's
    # option map, so results raced under different deadlines never alias.
    other = service.solve(graph, "race", budget, SolverOptions(
        deadline_s=90.0, entrants=entrants, generate_plan=False))
    assert other.feasible
    assert service.stats.solver_calls == 2
    assert len(service.cache) == 2


def test_cancel_cut_feasible_results_are_not_cacheable():
    """Best-so-far schedules cut short by a cancel are load-dependent."""
    graph = _graph()
    # Proven (deterministic) rounding failure: cacheable.
    clean = build_scheduled_result(
        "approx_fixed_half", graph, None, budget=100, feasible=False,
        solve_time_s=0.0, solver_status="rounding-exceeded-budget")
    assert _cacheable(clean), "proven rounding failure should cache"
    # A feasible schedule from an uninterrupted solve: cacheable.
    assert _cacheable(SimpleNamespace(feasible=True, solver_status="ok"))
    # Feasible but the cancel hook cut the search short: a best-so-far
    # schedule under a key whose full search finds better.  Not cacheable.
    assert not _cacheable(
        SimpleNamespace(feasible=True, solver_status="ok-cancelled"))
    # Load-dependent race verdicts: not cacheable.
    for status in ("race-no-feasible", "race-deadline-exhausted",
                   "race-cancelled"):
        verdict = build_scheduled_result(
            "race", graph, None, budget=100, feasible=False,
            solve_time_s=0.0, solver_status=status)
        assert not _cacheable(verdict), f"{status} must not cache"


def test_race_statistics_flow_into_service_counters():
    """record_race: wins, deadline hits and reaped entrants all surface."""
    service = SolveService(cache=None)
    graph = _graph()
    budget = tight_budget(graph, 0.6)
    service.solve(graph, "race", budget, SolverOptions(
        deadline_s=60.0, entrants=("approx_fixed_half",), generate_plan=False))
    service.solve(graph, "race", budget, SolverOptions(
        deadline_s=0.0, generate_plan=False))
    snap = service.statistics()["race"]
    assert snap["races"] == 2
    assert snap["wins"] == 1
    assert snap["no_feasible"] == 1
    assert snap["deadline_hits"] == 1
    assert snap["entrants_finished"] >= 1
    assert snap["entrants_cancelled"] >= len(DEFAULT_ENTRANTS)
    assert _race_threads() == []
