"""Tests for formatting helpers, the timer and schedule serialization."""

import pytest

from repro.core import checkpoint_all_schedule, linear_graph
from repro.utils import Timer, format_bytes, format_table, geomean, schedule_from_json, schedule_to_json


class TestFormatting:
    def test_format_bytes_units(self):
        assert format_bytes(512) == "512.00 B"
        assert format_bytes(2048) == "2.00 KiB"
        assert format_bytes(3 * 2**30) == "3.00 GiB"

    def test_geomean_basic(self):
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)
        assert geomean([2.0, 2.0, 2.0]) == pytest.approx(2.0)

    def test_geomean_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geomean([1.0, 0.0])

    def test_geomean_empty_is_nan(self):
        import math
        assert math.isnan(geomean([]))

    def test_format_table_alignment(self):
        text = format_table(["a", "long header"], [[1, 2], ["xyz", "w"]])
        lines = text.split("\n")
        assert len(lines) == 4
        assert len(set(len(l) for l in lines)) == 1  # fixed width rows


class TestTimer:
    def test_timer_elapsed_nonnegative(self):
        with Timer() as t:
            sum(range(100))
        assert t.elapsed >= 0.0


class TestSerialization:
    def test_round_trip(self):
        g = linear_graph(5)
        m = checkpoint_all_schedule(g)
        payload = schedule_to_json(g, m, strategy="checkpoint_all")
        restored = schedule_from_json(payload, g)
        assert (restored.R == m.R).all()
        assert (restored.S == m.S).all()

    def test_graph_mismatch_detected(self):
        g5, g7 = linear_graph(5), linear_graph(7)
        payload = schedule_to_json(g5, checkpoint_all_schedule(g5))
        with pytest.raises(ValueError):
            schedule_from_json(payload, g7)

    def test_bad_format_rejected(self):
        with pytest.raises(ValueError):
            schedule_from_json('{"format": "something-else"}')
