"""Tests for formatting helpers, the timer and the wire serialization."""

import json

import numpy as np
import pytest

from repro.core import checkpoint_all_schedule, linear_graph
from repro.service import SolveService, graph_content_hash
from repro.utils import (
    Timer,
    format_bytes,
    format_table,
    geomean,
    graph_from_json,
    graph_from_wire,
    graph_to_json,
    graph_to_wire,
    result_from_wire,
    result_to_wire,
    schedule_from_json,
    schedule_to_json,
)


class TestFormatting:
    def test_format_bytes_units(self):
        assert format_bytes(512) == "512.00 B"
        assert format_bytes(2048) == "2.00 KiB"
        assert format_bytes(3 * 2**30) == "3.00 GiB"

    def test_geomean_basic(self):
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)
        assert geomean([2.0, 2.0, 2.0]) == pytest.approx(2.0)

    def test_geomean_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geomean([1.0, 0.0])

    def test_geomean_empty_is_nan(self):
        import math
        assert math.isnan(geomean([]))

    def test_format_table_alignment(self):
        text = format_table(["a", "long header"], [[1, 2], ["xyz", "w"]])
        lines = text.split("\n")
        assert len(lines) == 4
        assert len(set(len(l) for l in lines)) == 1  # fixed width rows


class TestTimer:
    def test_timer_elapsed_nonnegative(self):
        with Timer() as t:
            sum(range(100))
        assert t.elapsed >= 0.0


class TestSerialization:
    def test_round_trip(self):
        g = linear_graph(5)
        m = checkpoint_all_schedule(g)
        payload = schedule_to_json(g, m, strategy="checkpoint_all")
        restored = schedule_from_json(payload, g)
        assert (restored.R == m.R).all()
        assert (restored.S == m.S).all()

    def test_graph_mismatch_detected(self):
        g5, g7 = linear_graph(5), linear_graph(7)
        payload = schedule_to_json(g5, checkpoint_all_schedule(g5))
        with pytest.raises(ValueError):
            schedule_from_json(payload, g7)

    def test_bad_format_rejected(self):
        with pytest.raises(ValueError):
            schedule_from_json('{"format": "something-else"}')


class TestGraphWireFormat:
    def test_round_trip_preserves_content_hash(self, tiny_unet_train):
        # The server's dedup/caching contract: an uploaded graph must hit the
        # same plan-cache entries as the original object.
        restored = graph_from_json(graph_to_json(tiny_unet_train))
        assert graph_content_hash(restored) == graph_content_hash(tiny_unet_train)

    def test_round_trip_preserves_structure_and_meta(self, tiny_unet_train):
        g = tiny_unet_train
        restored = graph_from_wire(graph_to_wire(g))
        assert restored.size == g.size
        assert restored.deps == g.deps
        assert restored.name == g.name
        assert [v.name for v in restored.nodes] == [v.name for v in g.nodes]
        # grad_index survives JSON with *integer* keys (the segmenting
        # baselines index it with ints; plain JSON would stringify them).
        assert restored.meta["grad_index"] == g.meta["grad_index"]
        assert all(isinstance(k, int) for k in restored.meta["grad_index"])

    def test_round_tripped_graph_is_solvable(self, tiny_unet_train):
        restored = graph_from_json(graph_to_json(tiny_unet_train))
        result = SolveService(cache=None).solve(restored, "ap_sqrt_n")
        assert result.feasible

    def test_wire_payload_is_plain_json(self, diamond_train):
        payload = graph_to_wire(diamond_train)
        assert json.loads(json.dumps(payload)) == payload

    def test_meta_numpy_values_round_trip(self, diamond_graph):
        g = diamond_graph
        g.meta["weights"] = np.arange(6, dtype=np.int32).reshape(2, 3)
        g.meta["scalar"] = np.float64(1.5)
        try:
            restored = graph_from_wire(graph_to_wire(g))
        finally:
            del g.meta["weights"], g.meta["scalar"]
        assert isinstance(restored.meta["weights"], np.ndarray)
        assert restored.meta["weights"].dtype == np.int32
        assert (restored.meta["weights"] == np.arange(6).reshape(2, 3)).all()
        assert restored.meta["scalar"] == 1.5

    def test_bad_format_rejected(self):
        with pytest.raises(ValueError):
            graph_from_wire({"format": "something-else"})


class TestResultWireFormat:
    def test_round_trip(self, chain5_train):
        service = SolveService(cache=None)
        original = service.solve(chain5_train, "chen_sqrt_n")
        payload = result_to_wire(original)
        assert json.loads(json.dumps(payload)) == payload  # plain JSON
        restored = result_from_wire(payload, chain5_train)
        assert restored.strategy == original.strategy
        assert restored.feasible == original.feasible
        assert restored.compute_cost == pytest.approx(original.compute_cost)
        assert restored.peak_memory == original.peak_memory
        assert (restored.matrices.R == original.matrices.R).all()
        assert (restored.matrices.S == original.matrices.S).all()
        assert restored.plan is not None

    def test_graph_mismatch_degrades_to_error(self, chain5_train, diamond_train):
        service = SolveService(cache=None)
        payload = result_to_wire(service.solve(chain5_train, "chen_sqrt_n"))
        with pytest.raises(ValueError):
            result_from_wire(payload, diamond_train)

    def test_infeasible_result_round_trips_without_schedule(self, chain5_train):
        service = SolveService(cache=None)
        original = service.solve(chain5_train, "linearized_greedy",
                                 budget=1)  # hopeless budget: no feasible b
        assert not original.feasible
        assert original.matrices is None
        payload = result_to_wire(original)
        assert payload["schedule"] is None
        # compute_cost is inf for schedule-less results; the wire payload
        # must stay strict-JSON (no bare Infinity token for non-Python
        # clients), so it maps to null.
        assert payload["compute_cost"] is None
        json.dumps(payload, allow_nan=False)
        restored = result_from_wire(payload, chain5_train)
        assert not restored.feasible
        assert restored.solver_status == original.solver_status
