"""Predicted-vs-measured tests: executing solved schedules over real tensors.

The acceptance property: for Algorithm 1 plans across the registered solver
strategies on executable presets, the executor's measured peak (plus constant
overhead -- the documented allocate-vs-compute charge point means both
accountings include it) equals ``simulate_plan``'s prediction, measured
recompute counts equal the plan's, and every output is bit-identical to
checkpoint-all execution.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.simulator import simulate_plan
from repro.execution import (
    build_execution_report,
    execute_checkpoint_all,
    execute_plan,
)
from repro.experiments.presets import build_numeric_training_graph
from repro.service import SolverOptions, SolveService

from helpers import ample_budget, tight_budget


@pytest.fixture(scope="module")
def mlp_numeric():
    return build_numeric_training_graph("linear_mlp", scale="ci", seed=0,
                                        hidden_sizes=[32] * 6, batch_size=4,
                                        input_features=32)


@pytest.fixture(scope="module")
def cnn_numeric():
    return build_numeric_training_graph("linear_cnn", scale="ci", seed=0,
                                        num_layers=5, batch_size=2,
                                        resolution=16, channels=8, pool_every=2)


@pytest.fixture(scope="module")
def vgg_numeric():
    return build_numeric_training_graph("vgg16", scale="ci", seed=0,
                                        batch_size=1, resolution=16,
                                        num_classes=10)


@pytest.fixture(scope="module")
def service():
    return SolveService()


NUMERIC_FIXTURES = ["mlp_numeric", "cnn_numeric", "vgg_numeric"]


# --------------------------------------------------------------------------- #
# The property: measured == predicted, for every strategy that solves
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("fixture,fraction",
                         [("mlp_numeric", 0.8), ("cnn_numeric", 0.75),
                          ("vgg_numeric", 0.8)])
def test_measured_equals_predicted_across_strategies(fixture, fraction,
                                                     service, request):
    numeric = request.getfixturevalue(fixture)
    graph = numeric.graph
    budget = tight_budget(graph, fraction)
    # max_nodes bounds the reference branch-and-bound solver (its runtime
    # knob); every other strategy ignores it.
    options = SolverOptions(time_limit_s=120, lp_time_limit_s=120, max_nodes=25)
    reference = execute_checkpoint_all(numeric)
    strategies = service.registry.keys()
    executed = 0
    for strategy in strategies:
        result = service.solve(graph, strategy, budget, options, strict=False)
        if not result.feasible or result.matrices is None:
            continue
        plan = result.plan
        if plan is None:  # e.g. chen_greedy skips lowering; do it here
            from repro.core.scheduler import generate_execution_plan
            plan = generate_execution_plan(graph, result.matrices)
        trace = simulate_plan(graph, plan)
        measured = execute_plan(numeric, plan)
        assert (measured.peak_live_bytes + graph.constant_overhead
                == trace.peak_memory), strategy
        assert measured.num_compute == plan.total_computations(), strategy
        assert measured.compute_counts == plan.compute_counts(), strategy
        for node, value in measured.outputs.items():
            np.testing.assert_array_equal(value, reference.outputs[node],
                                          err_msg=f"{strategy} node {node}")
        executed += 1
    assert executed >= 3  # several strategies must actually solve the cell


# --------------------------------------------------------------------------- #
# Acceptance criterion: ILP schedules execute within budget on >= 3 presets
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("fixture", NUMERIC_FIXTURES)
def test_ilp_schedule_executes_within_budget(fixture, service, request):
    numeric = request.getfixturevalue(fixture)
    graph = numeric.graph
    budget = tight_budget(graph, 0.7)
    report = service.execute(numeric, "checkmate_ilp", budget,
                             SolverOptions(time_limit_s=120))
    assert report.executed and report.feasible
    assert report.within_budget is True
    assert report.measured_peak_bytes <= budget
    assert report.peak_matches_plan
    assert report.peak_within_schedule
    assert report.measured_peak_bytes <= report.predicted_schedule_peak
    assert report.recompute_matches_plan
    assert report.outputs_match and report.max_abs_error == 0.0
    assert report.size_mismatched_nodes == []
    assert report.ok
    # Rematerializing must genuinely run below the checkpoint-all footprint.
    assert report.measured_peak_bytes < report.checkpoint_all_peak_bytes


# --------------------------------------------------------------------------- #
# Report semantics
# --------------------------------------------------------------------------- #
def test_report_for_infeasible_result(mlp_numeric, service):
    graph = mlp_numeric.graph
    report = service.execute(mlp_numeric, "checkmate_ilp",
                             graph.constant_overhead + 1)
    assert not report.executed
    assert not report.ok
    assert report.error is not None
    assert "NOT EXECUTED" in report.summary()


def test_report_roundtrips_to_json(mlp_numeric, service):
    import json

    report = service.execute(mlp_numeric, "checkmate_approx",
                             tight_budget(mlp_numeric.graph, 0.8))
    payload = json.loads(json.dumps(report.to_dict()))
    assert payload["ok"] == report.ok
    assert payload["measured_peak_bytes"] == report.measured_peak_bytes


def test_report_detects_plan_schedule_divergence(mlp_numeric, service):
    # Adversarial: insert a spurious recompute (into the node's still-live
    # register -- structurally legal) right after the node's original compute.
    # The plan no longer matches the (R, S) matrices, and the report must say
    # so instead of blessing the run.
    import dataclasses

    from repro.core.plan import ComputeNode, ExecutionPlan

    result = service.solve(mlp_numeric.graph, "checkpoint_all",
                           ample_budget(mlp_numeric.graph))
    statements = list(result.plan.statements)
    first_idx, first_compute = next(
        (i, s) for i, s in enumerate(statements) if isinstance(s, ComputeNode))
    statements.insert(first_idx + 1,
                      ComputeNode(register=first_compute.register,
                                  node_id=first_compute.node_id))
    tampered = ExecutionPlan(statements=statements,
                             graph_name=result.plan.graph_name)
    tampered.validate_structure()
    doctored = dataclasses.replace(result, plan=tampered)
    report = build_execution_report(mlp_numeric, doctored)
    assert report.executed
    assert not report.plan_matches_schedule
    assert not report.ok
    # The executor still agrees with the tampered plan's own accounting
    # (register reuse fix: the duplicate compute replaces, never double
    # counts), so every other cross-check holds.
    assert report.peak_matches_plan
    assert report.recompute_matches_plan
    assert report.outputs_match


def test_execute_uses_plan_cache(mlp_numeric):
    service = SolveService()
    budget = tight_budget(mlp_numeric.graph, 0.75)
    first = service.execute(mlp_numeric, "checkmate_approx", budget)
    calls_after_first = service.stats.solver_calls
    second = service.execute(mlp_numeric, "checkmate_approx", budget)
    assert service.stats.solver_calls == calls_after_first  # warm cache
    assert service.stats.executions == 2
    assert first.measured_peak_bytes == second.measured_peak_bytes
    assert service.statistics()["executions"] == 2


def test_execute_binds_plain_dfgraph():
    from repro.experiments.presets import build_training_graph

    service = SolveService()
    graph = build_training_graph("linear_mlp", scale="ci")
    report = service.execute(graph, "checkmate_ilp",
                             tight_budget(graph, 0.8), seed=3)
    assert report.executed and report.outputs_match
