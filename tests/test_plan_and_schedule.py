"""Tests for execution plans, schedule matrices and correctness validation."""

import numpy as np
import pytest

from repro.core import (
    AllocateRegister,
    ComputeNode,
    DeallocateRegister,
    ExecutionPlan,
    PlanError,
    ScheduleMatrices,
    checkpoint_all_schedule,
    checkpoint_last_node_schedule,
    linear_graph,
    schedule_compute_cost,
    validate_correctness_constraints,
)


class TestExecutionPlan:
    def make_plan(self):
        plan = ExecutionPlan(graph_name="g")
        plan.append(AllocateRegister(0, 0, 16))
        plan.append(ComputeNode(0, 0))
        plan.append(AllocateRegister(1, 1, 16))
        plan.append(ComputeNode(1, 1))
        plan.append(DeallocateRegister(0, 0))
        return plan

    def test_lengths_and_counts(self):
        plan = self.make_plan()
        assert len(plan) == 5
        assert plan.total_computations() == 2
        assert plan.num_allocations() == 2
        assert plan.num_deallocations() == 1
        assert plan.compute_counts() == {0: 1, 1: 1}
        assert plan.computed_nodes() == [0, 1]

    def test_validate_structure_ok(self):
        self.make_plan().validate_structure()

    def test_compute_into_unallocated_register_fails(self):
        plan = ExecutionPlan()
        plan.append(ComputeNode(0, 0))
        with pytest.raises(PlanError):
            plan.validate_structure()

    def test_register_reuse_fails(self):
        plan = ExecutionPlan()
        plan.append(AllocateRegister(0, 0, 4))
        plan.append(AllocateRegister(0, 1, 4))
        with pytest.raises(PlanError):
            plan.validate_structure()

    def test_double_deallocate_fails(self):
        plan = self.make_plan()
        plan.append(DeallocateRegister(0, 0))
        with pytest.raises(PlanError):
            plan.validate_structure()

    def test_register_node_mismatch_fails(self):
        plan = ExecutionPlan()
        plan.append(AllocateRegister(0, 0, 4))
        plan.append(ComputeNode(0, 1))
        with pytest.raises(PlanError):
            plan.validate_structure()

    def test_pretty_truncation(self):
        text = self.make_plan().pretty(max_lines=2)
        assert "more statements" in text

    def test_statement_str(self):
        assert "allocate" in str(AllocateRegister(0, 3, 8))
        assert "compute" in str(ComputeNode(0, 3))
        assert "deallocate" in str(DeallocateRegister(0, 3))


class TestScheduleMatrices:
    def test_shape_validation(self):
        with pytest.raises(ValueError):
            ScheduleMatrices(np.zeros((3, 3)), np.zeros((2, 3)))

    def test_dimensionality_validation(self):
        with pytest.raises(ValueError):
            ScheduleMatrices(np.zeros(3), np.zeros(3))

    def test_counts(self):
        m = checkpoint_all_schedule(linear_graph(4))
        assert m.num_stages == 4 and m.num_nodes == 4
        assert m.total_evaluations() == 4
        assert list(m.recomputation_counts()) == [1, 1, 1, 1]

    def test_copy_is_independent(self):
        m = checkpoint_all_schedule(linear_graph(3))
        c = m.copy()
        c.R[0, 0] = 0
        assert m.R[0, 0] == 1


class TestCanonicalSchedules:
    def test_checkpoint_all_is_valid(self, chain5_train):
        m = checkpoint_all_schedule(chain5_train)
        assert validate_correctness_constraints(chain5_train, m) == []

    def test_checkpoint_all_cost_is_ideal(self, chain5_train):
        m = checkpoint_all_schedule(chain5_train)
        assert schedule_compute_cost(chain5_train, m) == pytest.approx(chain5_train.total_cost())

    def test_checkpoint_last_node_is_valid(self, chain5_train):
        m = checkpoint_last_node_schedule(chain5_train)
        assert validate_correctness_constraints(chain5_train, m) == []

    def test_checkpoint_last_node_costs_more(self, chain5_train):
        lazy = schedule_compute_cost(chain5_train, checkpoint_last_node_schedule(chain5_train))
        ideal = schedule_compute_cost(chain5_train, checkpoint_all_schedule(chain5_train))
        assert lazy > ideal

    def test_diamond_checkpoint_all_valid(self, diamond_train):
        m = checkpoint_all_schedule(diamond_train)
        assert validate_correctness_constraints(diamond_train, m) == []


class TestConstraintValidation:
    def test_missing_dependency_detected(self, chain5):
        m = checkpoint_all_schedule(chain5)
        # Break (1b): stage 2 computes node 2 but its parent is neither computed
        # nor checkpointed.
        m.S[2, 1] = 0
        violations = validate_correctness_constraints(chain5, m)
        assert any("(1b)" in v for v in violations)

    def test_phantom_checkpoint_detected(self, chain5):
        m = checkpoint_all_schedule(chain5)
        # Break (1c): claim node 3 is checkpointed into stage 2 although it has
        # never been computed before stage 2.
        m.S[2, 3] = 1
        violations = validate_correctness_constraints(chain5, m, frontier_advancing=False)
        assert any("(1c)" in v for v in violations)

    def test_initial_checkpoint_detected(self, chain5):
        m = checkpoint_all_schedule(chain5)
        m.S[0, 0] = 1
        violations = validate_correctness_constraints(chain5, m, frontier_advancing=False)
        assert any("(1d)" in v for v in violations)

    def test_terminal_never_computed_detected(self, chain5):
        m = checkpoint_all_schedule(chain5)
        m.R[4, 4] = 0
        violations = validate_correctness_constraints(chain5, m)
        assert any("(1e)" in v for v in violations)

    def test_frontier_diagonal_enforced(self, chain5):
        m = checkpoint_all_schedule(chain5)
        m.R[2, 2] = 0
        m.R[2, 1] = 1  # keep (1e) satisfied elsewhere
        violations = validate_correctness_constraints(chain5, m)
        assert any("(8a)" in v for v in violations)

    def test_upper_triangular_R_detected(self, chain5):
        m = checkpoint_all_schedule(chain5)
        m.R[0, 3] = 1
        violations = validate_correctness_constraints(chain5, m)
        assert any("(8c)" in v for v in violations)

    def test_wrong_width_reported(self, chain5):
        m = ScheduleMatrices(np.eye(3, dtype=np.uint8), np.zeros((3, 3), dtype=np.uint8))
        violations = validate_correctness_constraints(chain5, m)
        assert violations and "graph size" in violations[0]
