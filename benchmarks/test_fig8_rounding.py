"""Figure 8 + §5.1: deterministic vs randomized two-phase rounding; naive rounding fails."""

from bench_helpers import MiB, run_once

from repro.experiments import naive_rounding_study, rounding_comparison
from repro.experiments.budget_sweep import budget_grid


def test_fig8_rounding_comparison(benchmark, vgg16_flop_graph):
    budget = budget_grid(vgg16_flop_graph, num_budgets=4, low_fraction=0.6)[1]
    comp = run_once(benchmark, rounding_comparison, vgg16_flop_graph, budget,
                    num_randomized_samples=10, include_ilp=True,
                    include_portfolio=True, ilp_time_limit_s=90)

    print(f"\n[Figure 8] {comp.graph_name} at budget {budget / MiB:.0f} MiB")
    print(f"  checkpoint-all: cost={comp.checkpoint_all_cost:.3g}, "
          f"mem={comp.checkpoint_all_memory / MiB:.0f} MiB")
    if comp.ilp_cost is not None:
        print(f"  ILP optimum:    cost={comp.ilp_cost:.3g}, mem={comp.ilp_memory / MiB:.0f} MiB")
    if comp.deterministic_cost is not None:
        print(f"  deterministic:  cost={comp.deterministic_cost:.3g}, "
              f"mem={comp.deterministic_memory / MiB:.0f} MiB")
    feasible_rand = [p for p in comp.randomized_points if p["feasible"]]
    print(f"  randomized:     {len(feasible_rand)}/{len(comp.randomized_points)} samples feasible")

    assert comp.deterministic_cost is not None
    if comp.ilp_cost is not None:
        # Rounding can never beat the optimum.
        assert comp.deterministic_cost >= comp.ilp_cost - 1e-6
    # Paper shape: deterministic rounding produces consistently lower cost than
    # the average randomized-rounding sample.
    if feasible_rand:
        mean_rand = sum(p["cost"] for p in feasible_rand) / len(feasible_rand)
        assert comp.deterministic_cost <= mean_rand + 1e-6

    # Portfolio overlay: the fixed-0.5 scheme is the deterministic rounding
    # under another name (same LP, same threshold, same min-R completion),
    # and the threshold sweep always includes 0.5 among its candidates.
    for key, point in comp.portfolio_points.items():
        print(f"  {key:>22s}: " + (
            f"cost={point['cost']:.3g}, mem={point['memory'] / MiB:.0f} MiB"
            if point else "infeasible"))
        if point and comp.ilp_cost is not None:
            assert point["cost"] >= comp.ilp_cost - 1e-6, key
    fixed = comp.portfolio_points["approx_fixed_half"]
    assert fixed is not None and abs(fixed["cost"] - comp.deterministic_cost) <= 1e-6
    sweep = comp.portfolio_points["approx_threshold_sweep"]
    assert sweep is not None and sweep["cost"] <= fixed["cost"] + 1e-6


def test_sec51_naive_rounding_infeasibility(benchmark, vgg16_flop_graph):
    """§5.1: naive rounding of both R* and S* essentially never yields feasible schedules."""
    budget = budget_grid(vgg16_flop_graph, num_budgets=4, low_fraction=0.5)[0]
    stats = run_once(benchmark, naive_rounding_study, vgg16_flop_graph, budget,
                     num_samples=200)

    print(f"\n[Section 5.1] naive rounding feasibility on {vgg16_flop_graph.name}")
    for mode, s in stats.items():
        print(f"  {mode:>13s}: {s['num_feasible']}/{s['num_samples']} feasible "
              f"({s['num_correct']} dependency-correct)")

    # The paper reports 0 feasible samples out of 50 000 (randomized) and an
    # infeasible result for deterministic rounding.
    assert stats["deterministic"]["num_feasible"] == 0
    assert stats["randomized"]["num_feasible"] <= 0.02 * stats["randomized"]["num_samples"]
