#!/usr/bin/env python
"""Open-loop load replay against the solve daemon.

Replays a mixed preset/budget solve workload at stepped arrival rates and
reports saturation throughput, server-side latency quantiles (p50/p95/p99),
and the shed rate under admission control.  In comparison mode it boots one
daemon per worker backend (thread vs process) on an ephemeral port, replays
the *identical* request list against each, verifies the returned schedules
are byte-identical per cell, and writes ``BENCH_PR8.json``.

Open-loop means arrivals are scheduled on a fixed clock and submitted whether
or not earlier requests have finished -- the load does not back off when the
server slows down, which is what exposes queueing and shedding behavior
(closed-loop clients self-throttle and hide both).

Usage::

    # Thread-vs-process comparison (spawns two daemons), full workload:
    python benchmarks/load_replay.py --out BENCH_PR8.json

    # Same but quick, and fail if process/thread throughput < 1.0:
    python benchmarks/load_replay.py --smoke --min-ratio 1.0

    # Replay against an already-running daemon (CI load-smoke):
    python benchmarks/load_replay.py --smoke --server http://127.0.0.1:8765

Exit status is non-zero if any replayed job fails, the Prometheus scrape is
invalid, schedules diverge between backends, or ``--min-ratio`` is not met.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import socket
import subprocess
import sys
import threading
import time

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_SRC = os.path.join(_REPO_ROOT, "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.experiments import build_training_graph  # noqa: E402
from repro.obs.metrics import validate_prometheus_text  # noqa: E402
from repro.server import ServeAPIError, ServeClient  # noqa: E402

PRESETS = ("linear_mlp", "linear_cnn", "resnet_tiny")
STRATEGY = "checkmate_ilp"


# --------------------------------------------------------------------------- #
# Workload
# --------------------------------------------------------------------------- #
def build_workload(num_requests: int) -> list:
    """A deterministic mixed workload: ``num_requests`` solve cells cycling
    over the presets at stepped budget fractions.

    Every cell gets a *unique* budget (a tiny per-request offset on top of the
    stepped fraction) so no two requests dedup into one flight and no plan
    cache short-circuits the solver: the replay measures solve throughput,
    not cache throughput.
    """
    budgets = {}
    for preset in PRESETS:
        graph = build_training_graph(preset, scale="ci")
        budgets[preset] = (float(graph.constant_overhead),
                           float(graph.total_activation_memory()))
    fractions = [0.45, 0.55, 0.65, 0.75]
    requests = []
    for i in range(num_requests):
        preset = PRESETS[i % len(PRESETS)]
        fraction = fractions[(i // len(PRESETS)) % len(fractions)]
        overhead, activations = budgets[preset]
        budget = overhead + activations * fraction + i  # +i: unique cell
        requests.append({"preset": preset, "budget": float(int(budget))})
    return requests


# --------------------------------------------------------------------------- #
# Replay
# --------------------------------------------------------------------------- #
def replay(base_url: str, requests: list, rate_per_s: float,
           timeout_s: float = 600.0) -> dict:
    """Submit ``requests`` open-loop at ``rate_per_s``, wait for every job to
    settle, and measure from the server-side job timestamps."""
    client = ServeClient(base_url, timeout=30.0, max_retries=0)
    interval = 1.0 / rate_per_s
    lock = threading.Lock()
    submitted = []   # (request, job_id)
    shed = []        # (request, retry_after)
    errors = []

    def submit(request):
        try:
            handle = client.submit_solve(strategy=STRATEGY,
                                         preset=request["preset"],
                                         budget=request["budget"])
            with lock:
                submitted.append((request, handle["job_id"]))
        except ServeAPIError as exc:
            with lock:
                if exc.status == 503:
                    shed.append((request, exc.retry_after))
                else:
                    errors.append(f"{request}: HTTP {exc.status} {exc.message}")

    start = time.monotonic()
    threads = []
    for i, request in enumerate(requests):
        target = start + i * interval
        delay = target - time.monotonic()
        if delay > 0:
            time.sleep(delay)
        # One thread per submission keeps the arrival clock open-loop even
        # when submissions momentarily block on a busy accept queue.
        t = threading.Thread(target=submit, args=(request,), daemon=True)
        t.start()
        threads.append(t)
    for t in threads:
        t.join(30)
    offered_duration = time.monotonic() - start

    # Drain: poll until every accepted job settles.
    deadline = time.monotonic() + timeout_s
    jobs = {}
    for request, job_id in submitted:
        while True:
            status = client.job(job_id)
            if status["state"] not in ("queued", "running"):
                jobs[job_id] = (request, status)
                break
            if time.monotonic() > deadline:
                errors.append(f"job {job_id} still {status['state']} "
                              f"after {timeout_s:g}s")
                jobs[job_id] = (request, status)
                break
            time.sleep(0.05)

    done = {jid: (req, st) for jid, (req, st) in jobs.items()
            if st["state"] == "done"}
    failed = {jid: (req, st) for jid, (req, st) in jobs.items()
              if st["state"] not in ("done",)}
    for jid, (req, st) in failed.items():
        errors.append(f"job {jid} ({req}) ended {st['state']}: "
                      f"{st.get('error')}")

    latencies = sorted(st["finished_at"] - st["submitted_at"]
                       for _, st in done.values())
    queue_waits = sorted(st["started_at"] - st["submitted_at"]
                         for _, st in done.values()
                         if st.get("started_at"))
    if done:
        first_submit = min(st["submitted_at"] for _, st in done.values())
        last_finish = max(st["finished_at"] for _, st in done.values())
        span = max(last_finish - first_submit, 1e-9)
        throughput = len(done) / span
    else:
        throughput = 0.0

    def quantile(values, q):
        if not values:
            return None
        return values[min(int(q * len(values)), len(values) - 1)]

    return {
        "rate_per_s": rate_per_s,
        "offered": len(requests),
        "accepted": len(submitted),
        "shed": len(shed),
        "shed_rate": len(shed) / max(len(requests), 1),
        "retry_after_seen": sorted({ra for _, ra in shed if ra is not None}),
        "completed": len(done),
        "failed": len(failed),
        "throughput_per_s": throughput,
        "offered_duration_s": offered_duration,
        "latency_s": {"p50": quantile(latencies, 0.50),
                      "p95": quantile(latencies, 0.95),
                      "p99": quantile(latencies, 0.99)},
        "queue_wait_s": {"p50": quantile(queue_waits, 0.50),
                         "p95": quantile(queue_waits, 0.95)},
        "errors": errors,
        "schedules": {
            f"{req['preset']}/{req['budget']:g}": _schedule_sha(client, jid)
            for jid, (req, st) in done.items()
        },
    }


def _schedule_sha(client: ServeClient, job_id: str):
    payload = client.result(job_id)
    schedule = (payload.get("result") or {}).get("schedule")
    if schedule is None:
        return None
    return hashlib.sha256(schedule.encode("utf-8")).hexdigest()


def scrape_ok(base_url: str) -> bool:
    try:
        text = ServeClient(base_url).metrics_prometheus()
        per_metric = validate_prometheus_text(text)  # raises on malformed text
        return sum(per_metric.values()) > 0
    except Exception as exc:  # noqa: BLE001 - report any scrape failure
        print(f"prometheus scrape failed: {exc}", file=sys.stderr)
        return False


# --------------------------------------------------------------------------- #
# Daemon lifecycle
# --------------------------------------------------------------------------- #
def _free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


class Daemon:
    """A ``repro serve`` subprocess on an ephemeral port."""

    def __init__(self, backend: str, workers: int,
                 max_queue_depth=None) -> None:
        self.port = _free_port()
        self.url = f"http://127.0.0.1:{self.port}"
        argv = [sys.executable, "-m", "repro", "serve",
                "--host", "127.0.0.1", "--port", str(self.port),
                "--backend", backend, "--workers", str(workers),
                "--cache-entries", "0"]
        if max_queue_depth is not None:
            argv += ["--max-queue-depth", str(max_queue_depth)]
        env = dict(os.environ)
        env["PYTHONPATH"] = _SRC + os.pathsep + env.get("PYTHONPATH", "")
        self.proc = subprocess.Popen(argv, env=env,
                                     stdout=subprocess.DEVNULL,
                                     stderr=subprocess.DEVNULL)

    def wait_ready(self, timeout_s: float = 120.0) -> None:
        client = ServeClient(self.url, timeout=2.0)
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            if self.proc.poll() is not None:
                raise RuntimeError(
                    f"daemon exited early (rc={self.proc.returncode})")
            try:
                if client.healthz()["status"] == "ok":
                    return
            except ServeAPIError:
                time.sleep(0.1)
        raise RuntimeError(f"daemon at {self.url} never became healthy")

    def stop(self) -> None:
        self.proc.terminate()
        try:
            self.proc.wait(10)
        except subprocess.TimeoutExpired:
            self.proc.kill()
            self.proc.wait(10)

    def __enter__(self) -> "Daemon":
        self.wait_ready()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()


# --------------------------------------------------------------------------- #
# Modes
# --------------------------------------------------------------------------- #
def run_attached(args) -> int:
    requests = build_workload(args.requests)
    print(f"replaying {len(requests)} requests against {args.server} "
          f"at {args.rates[0]:g}/s", flush=True)
    report = replay(args.server, requests, args.rates[0],
                    timeout_s=args.drain_timeout)
    report.pop("schedules", None)
    print(json.dumps(report, indent=2))
    ok = not report["errors"] and report["failed"] == 0
    if not scrape_ok(args.server):
        ok = False
    print("load-smoke:", "OK" if ok else "FAILED")
    return 0 if ok else 1


def run_backend(backend: str, args, requests) -> dict:
    print(f"--- backend={backend} workers={args.workers} ---", flush=True)
    runs = []
    with Daemon(backend, args.workers,
                max_queue_depth=args.max_queue_depth) as daemon:
        for rate in args.rates:
            print(f"  rate {rate:g}/s ...", flush=True)
            run = replay(daemon.url, requests, rate,
                         timeout_s=args.drain_timeout)
            print(f"    completed {run['completed']}/{run['offered']}, "
                  f"throughput {run['throughput_per_s']:.3f}/s, "
                  f"p50 {run['latency_s']['p50']:.3f}s "
                  f"p99 {run['latency_s']['p99']:.3f}s, "
                  f"shed {run['shed']}", flush=True)
            runs.append(run)
        prometheus_valid = scrape_ok(daemon.url)
    saturation = max(run["throughput_per_s"] for run in runs)
    return {"backend": backend, "workers": args.workers, "runs": runs,
            "saturation_throughput_per_s": saturation,
            "prometheus_valid": prometheus_valid}


def run_compare(args) -> int:
    requests = build_workload(args.requests)
    results = {name: run_backend(name, args, requests)
               for name in ("thread", "process")}

    # Schedules must be byte-identical per cell across the two backends.
    mismatches = []
    thread_sched: dict = {}
    process_sched: dict = {}
    for run in results["thread"]["runs"]:
        thread_sched.update(run["schedules"])
    for run in results["process"]["runs"]:
        process_sched.update(run["schedules"])
    for cell in sorted(set(thread_sched) & set(process_sched)):
        if thread_sched[cell] != process_sched[cell]:
            mismatches.append(cell)
    for side in results.values():
        for run in side["runs"]:
            run.pop("schedules", None)

    ratio = (results["process"]["saturation_throughput_per_s"]
             / max(results["thread"]["saturation_throughput_per_s"], 1e-9))
    report = {
        "benchmark": "load_replay",
        "strategy": STRATEGY,
        "presets": list(PRESETS),
        "requests": len(requests),
        "rates_per_s": args.rates,
        "env": {
            "python": sys.version.split()[0],
            "cpus": os.cpu_count(),
            "note": ("process-over-thread speedup requires multiple cores; "
                     "on a single-CPU host the two backends timeshare one "
                     "core and the ratio reflects IPC overhead, not "
                     "parallelism. scipy's HiGHS MILP releases the GIL, so "
                     "the thread backend is a strong baseline."),
        },
        "thread": results["thread"],
        "process": results["process"],
        "process_over_thread_saturation_ratio": ratio,
        "schedule_cells_compared": len(set(thread_sched) & set(process_sched)),
        "schedule_mismatches": mismatches,
    }
    out = args.out
    if not os.path.isabs(out):
        out = os.path.join(_REPO_ROOT, out)
    with open(out, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    print(f"wrote {out}")
    print(f"saturation throughput: thread "
          f"{results['thread']['saturation_throughput_per_s']:.3f}/s, "
          f"process {results['process']['saturation_throughput_per_s']:.3f}/s "
          f"(ratio {ratio:.3f}, {os.cpu_count()} cpu)")

    ok = True
    for name, side in results.items():
        failures = sum(run["failed"] for run in side["runs"])
        if failures or not side["prometheus_valid"]:
            print(f"{name}: {failures} failed jobs, prometheus_valid="
                  f"{side['prometheus_valid']}", file=sys.stderr)
            ok = False
    if mismatches:
        print(f"schedule mismatches between backends: {mismatches}",
              file=sys.stderr)
        ok = False
    if args.min_ratio is not None and ratio < args.min_ratio:
        print(f"process/thread ratio {ratio:.3f} below required "
              f"{args.min_ratio:g}", file=sys.stderr)
        ok = False
    return 0 if ok else 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--server", default=None,
                        help="attach to a running daemon instead of spawning "
                             "one per backend (single replay, no comparison)")
    parser.add_argument("--smoke", action="store_true",
                        help="small fast workload (CI)")
    parser.add_argument("--requests", type=int, default=None,
                        help="number of requests per replay "
                             "(default: 36, or 9 with --smoke)")
    parser.add_argument("--rates", default=None,
                        help="comma-separated arrival rates in req/s "
                             "(default: 1,2,4, or 2 with --smoke)")
    parser.add_argument("--workers", type=int, default=2,
                        help="daemon worker count (spawned daemons)")
    parser.add_argument("--max-queue-depth", type=int, default=None,
                        help="admission-control depth for spawned daemons "
                             "(default: 24, or unbounded with --smoke) -- "
                             "the top arrival rate is meant to overrun it "
                             "so the report exercises 503 shedding")
    parser.add_argument("--min-ratio", type=float, default=None,
                        help="fail unless process/thread saturation "
                             "throughput ratio reaches this")
    parser.add_argument("--drain-timeout", type=float, default=600.0,
                        help="max seconds to wait for accepted jobs to settle")
    parser.add_argument("--out", default="BENCH_PR8.json",
                        help="comparison report path (relative to repo root)")
    args = parser.parse_args(argv)

    if args.requests is None:
        args.requests = 9 if args.smoke else 48
    if args.rates is None:
        # The top rate should exceed single-host solve capacity (these ci-scale
        # MILP cells solve in ~0.1-0.7s) so the last step measures saturation
        # throughput rather than the offered rate.
        args.rates = [2.0] if args.smoke else [2.0, 8.0, 16.0]
    else:
        args.rates = [float(r) for r in str(args.rates).split(",") if r]
    if args.max_queue_depth is None and not args.smoke and not args.server:
        args.max_queue_depth = 24

    if args.server:
        return run_attached(args)
    return run_compare(args)


if __name__ == "__main__":
    sys.exit(main())
