"""Table 2: approximation ratios of heuristics and LP rounding vs the optimal ILP."""

from bench_helpers import run_once

from repro.experiments import approximation_ratio_table, format_ratio_table

STRATEGIES = ("ap_sqrt_n", "ap_greedy", "griewank_logn", "checkmate_approx")


def test_table2_approximation_ratios(benchmark, vgg16_flop_graph, mobilenet_flop_graph,
                                     unet_flop_graph, solve_service):
    graphs = {
        "MobileNet": mobilenet_flop_graph,
        "VGG16": vgg16_flop_graph,
        "U-Net": unet_flop_graph,
    }
    # parallel=False for reproducible time-limited ILP denominators (see the
    # note in test_fig5_budget_sweep.py).
    rows = run_once(benchmark, approximation_ratio_table, graphs,
                    strategies=STRATEGIES, num_budgets=3, ilp_time_limit_s=90,
                    service=solve_service, parallel=False)

    print("\n[Table 2] geometric-mean cost ratio vs optimal ILP (feasible budgets)")
    print(format_ratio_table(rows, STRATEGIES))

    for row in rows:
        assert row.budgets_evaluated >= 1, row.model
        # Every ratio is >= 1 by optimality of the ILP.
        for strategy, ratio in row.ratios.items():
            assert ratio >= 1.0 - 1e-6, (row.model, strategy)
        # Paper shape: two-phase LP rounding is the closest to optimal
        # (1.00x-1.06x); the unit-cost heuristics trail it.
        approx = row.ratios.get("checkmate_approx")
        assert approx is not None, row.model
        assert approx < 1.25, (row.model, approx)
        for heuristic in ("ap_sqrt_n", "griewank_logn"):
            if heuristic in row.ratios:
                assert approx <= row.ratios[heuristic] + 1e-6, (row.model, heuristic)
