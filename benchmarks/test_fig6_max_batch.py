"""Figure 6: maximum batch size at <=1 extra forward pass of overhead."""

from bench_helpers import MiB, run_once

from repro.experiments.max_batch import format_max_batch, max_batch_experiment
from repro.models import mobilenet_v1, unet, vgg19

# CI-scale stand-ins for the paper's 16 GB V100: smaller resolutions with a
# proportionally smaller budget keep the outer batch-size search fast while
# preserving the relative ordering between strategies.
BUDGET = 1024 * MiB
STRATEGIES = ("checkpoint_all", "ap_sqrt_n", "linearized_greedy", "checkmate_approx")


def test_fig6_max_batch(benchmark, solve_service):
    models = {
        "VGG19": lambda b: vgg19(batch_size=b, resolution=64),
        "MobileNet": lambda b: mobilenet_v1(batch_size=b, resolution=64),
        "U-Net": lambda b: unet(batch_size=b, resolution=(96, 128), base_filters=16, depth=3),
    }
    results = run_once(benchmark, max_batch_experiment, models, budget=BUDGET,
                       strategies=STRATEGIES, max_batch=1024, service=solve_service)

    print(f"\n[Figure 6] max batch size at {BUDGET / MiB:.0f} MiB, cost cap = 1 extra forward pass")
    print(format_max_batch(results))

    by_model = {}
    for r in results:
        by_model.setdefault(r.model, {})[r.strategy] = r.max_batch_size
    for model, per_strategy in by_model.items():
        baseline = per_strategy["checkpoint_all"]
        checkmate = per_strategy["checkmate_approx"]
        best_heuristic = max(per_strategy["ap_sqrt_n"], per_strategy["linearized_greedy"])
        assert baseline >= 1, model
        # Paper shape: rematerialization grows the feasible batch size well past
        # checkpoint-all (the paper reports 2.3x - 5.1x with the exact ILP); the
        # LP-rounding approximation used here at CI scale must stay within a few
        # percent of the best generalized heuristic and beat checkpoint-all.
        assert best_heuristic >= baseline, model
        assert checkmate >= 0.85 * best_heuristic, model
        # Calibration note: the 1.2x multiplier encodes an *exact-ILP* claim
        # (paper Fig. 6), and checkmate_approx only tracks it on the linear
        # models.  On the skip-connection-heavy U-Net at CI scale the
        # two-phase rounding caps at 99 vs the 89 baseline (1.11x): for
        # batch >= 103 the rounded S exceeds the full budget for every
        # rounding configuration tried (allowance 0.1/0.05/0.02/0.0,
        # deterministic and randomized x64 samples) -- the seed-identical
        # behaviour recorded in CHANGES.md.  The rounding-portfolio PR
        # re-ran the search with approx_threshold_sweep, which tries every
        # distinct S* value as a threshold, and it caps at the same 99
        # (cross-checked below): the ceiling is a property of the LP
        # relaxation at this scale, not of the 0.5 threshold choice, so the
        # bound is tightened from the provisional 1.08x to 1.10x (99/89 =
        # 1.112x measured).  The linear models keep the exact-claim 1.2x.
        if model == "U-Net":
            assert checkmate >= 1.10 * baseline, model
        else:
            assert checkmate >= 1.2 * baseline, model


def test_fig6_unet_portfolio_threshold_sweep_matches_legacy_cap(solve_service):
    """The full-threshold-family sweep confirms the U-Net batch-99 ceiling.

    ``approx_threshold_sweep`` dominates the legacy fixed-0.5 rounding by
    construction (0.5 is always among its candidate thresholds), so if any
    threshold admitted a feasible rounding past the legacy cap this search
    would find it.  It reaching the *same* max batch is the evidence behind
    tightening the U-Net assertion above.
    """
    models = {
        "U-Net": lambda b: unet(batch_size=b, resolution=(96, 128),
                                base_filters=16, depth=3),
    }
    results = max_batch_experiment(
        models, budget=BUDGET,
        strategies=("checkmate_approx", "approx_threshold_sweep"),
        max_batch=1024, service=solve_service)
    by_strategy = {r.strategy: r.max_batch_size for r in results}
    legacy = by_strategy["checkmate_approx"]
    sweep = by_strategy["approx_threshold_sweep"]
    print(f"\n[Figure 6 calibration] U-Net max batch: legacy rounding "
          f"{legacy}, threshold-sweep portfolio {sweep}")
    assert sweep >= legacy, \
        "threshold sweep must dominate the fixed 0.5 threshold"
    # The documented ceiling: if the portfolio ever pushes past it, the
    # calibration comment (and the 1.10x bound) above should be revisited.
    assert sweep == 99, \
        f"U-Net portfolio cap moved from the documented 99 to {sweep}; " \
        f"recalibrate test_fig6_max_batch"
