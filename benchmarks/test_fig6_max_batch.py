"""Figure 6: maximum batch size at <=1 extra forward pass of overhead."""

from bench_helpers import MiB, run_once

from repro.experiments.max_batch import format_max_batch, max_batch_experiment
from repro.models import mobilenet_v1, unet, vgg19

# CI-scale stand-ins for the paper's 16 GB V100: smaller resolutions with a
# proportionally smaller budget keep the outer batch-size search fast while
# preserving the relative ordering between strategies.
BUDGET = 1024 * MiB
STRATEGIES = ("checkpoint_all", "ap_sqrt_n", "linearized_greedy", "checkmate_approx")


def test_fig6_max_batch(benchmark, solve_service):
    models = {
        "VGG19": lambda b: vgg19(batch_size=b, resolution=64),
        "MobileNet": lambda b: mobilenet_v1(batch_size=b, resolution=64),
        "U-Net": lambda b: unet(batch_size=b, resolution=(96, 128), base_filters=16, depth=3),
    }
    results = run_once(benchmark, max_batch_experiment, models, budget=BUDGET,
                       strategies=STRATEGIES, max_batch=1024, service=solve_service)

    print(f"\n[Figure 6] max batch size at {BUDGET / MiB:.0f} MiB, cost cap = 1 extra forward pass")
    print(format_max_batch(results))

    by_model = {}
    for r in results:
        by_model.setdefault(r.model, {})[r.strategy] = r.max_batch_size
    for model, per_strategy in by_model.items():
        baseline = per_strategy["checkpoint_all"]
        checkmate = per_strategy["checkmate_approx"]
        best_heuristic = max(per_strategy["ap_sqrt_n"], per_strategy["linearized_greedy"])
        assert baseline >= 1, model
        # Paper shape: rematerialization grows the feasible batch size well past
        # checkpoint-all (the paper reports 2.3x - 5.1x with the exact ILP); the
        # LP-rounding approximation used here at CI scale must stay within a few
        # percent of the best generalized heuristic and beat checkpoint-all.
        assert best_heuristic >= baseline, model
        assert checkmate >= 0.85 * best_heuristic, model
        # Calibration note: the 1.2x multiplier encodes an *exact-ILP* claim
        # (paper Fig. 6), and checkmate_approx only tracks it on the linear
        # models.  On the skip-connection-heavy U-Net at CI scale the
        # two-phase rounding caps at 99 vs the 89 baseline (1.11x): for
        # batch >= 103 the rounded S exceeds the full budget for every
        # rounding configuration tried (allowance 0.1/0.05/0.02/0.0,
        # deterministic and randomized x64 samples) -- the seed-identical
        # behaviour recorded in CHANGES.md, an algorithmic property of the
        # approximation rather than a solver regression.  The linear models
        # keep the 1.2x bound; the non-linear one asserts the documented
        # 1.11x capability with a small margin, so a regression in the
        # rounding still trips it.
        if model == "U-Net":
            assert checkmate >= 1.08 * baseline, model
        else:
            assert checkmate >= 1.2 * baseline, model
