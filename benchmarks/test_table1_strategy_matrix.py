"""Table 1: qualitative capability matrix of rematerialization strategies."""

from bench_helpers import run_once

from repro.baselines import STRATEGIES
from repro.experiments import format_strategy_matrix, strategy_matrix_rows


def test_table1_strategy_matrix(benchmark):
    rows = run_once(benchmark, strategy_matrix_rows)
    print("\n[Table 1]")
    print(format_strategy_matrix())

    assert len(rows) == len(STRATEGIES) == 10
    # Only the Checkmate ILP and its LP-rounding approximation are general,
    # cost aware and memory aware simultaneously -- the paper's Table 1 claim.
    fully = [r[0] for r in rows if r[2] == "yes" and r[3] == "yes" and r[4] == "yes"]
    assert sorted(fully) == ["checkmate_approx", "checkmate_ilp"]
    # Prior heuristics are never cost aware.
    for key in ("chen_sqrt_n", "chen_greedy", "griewank_logn", "ap_sqrt_n", "linearized_greedy"):
        assert STRATEGIES[key].cost_aware is False
