"""Figure 7: R-matrix schedule visualizations for VGG19."""

from bench_helpers import run_once

from repro.cost_model import FlopCostModel
from repro.experiments import build_training_graph, schedule_visualization
from repro.experiments.budget_sweep import budget_grid


def test_fig7_schedule_visualization(benchmark):
    graph = build_training_graph("vgg19", cost_model=FlopCostModel(),
                                 batch_size=8, resolution=64)
    budget = budget_grid(graph, num_budgets=3, low_fraction=0.6)[1]

    viz = run_once(benchmark, schedule_visualization, graph, budget,
                   strategies=("checkpoint_all", "linearized_greedy", "checkmate_ilp"),
                   ilp_time_limit_s=90, max_width=60)

    print(f"\n[Figure 7] {graph.name} at budget {budget / 2**20:.0f} MiB")
    print(viz.side_by_side())

    assert "checkmate_ilp" in viz.renders
    # The ILP schedule recomputes more than checkpoint-all (its denser lower
    # triangle in the paper's figure) because it trades compute for memory.
    assert viz.recompute_counts["checkmate_ilp"] >= viz.recompute_counts["checkpoint_all"]
    # Every render has one row per stage.
    for render in viz.renders.values():
        if render != "(infeasible)":
            assert len(render.split("\n")) == graph.size
