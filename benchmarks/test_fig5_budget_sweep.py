"""Figure 5: computational overhead vs memory budget on VGG16, MobileNet and U-Net."""

import pytest

from bench_helpers import run_once

from repro.experiments import budget_grid, budget_sweep, format_sweep

LINEAR_STRATEGIES = ("checkpoint_all", "chen_sqrt_n", "chen_greedy", "griewank_logn",
                     "checkmate_approx", "checkmate_ilp")
NONLINEAR_STRATEGIES = ("checkpoint_all", "ap_sqrt_n", "ap_greedy", "linearized_sqrt_n",
                        "linearized_greedy", "checkmate_approx", "checkmate_ilp")


def _checkmate_dominates(points) -> None:
    """Assert the paper's takeaway: Checkmate's in-budget overhead is the lowest."""
    by_budget = {}
    for p in points:
        by_budget.setdefault(p.budget, {})[p.strategy] = p
    for budget, entries in by_budget.items():
        cm = entries.get("checkmate_ilp") or entries.get("checkmate_approx")
        if cm is None or not cm.feasible:
            continue
        for key, other in entries.items():
            if key.startswith("checkmate") or not other.feasible:
                continue
            assert cm.overhead <= other.overhead + 1e-6, (
                f"budget {budget}: {key} ({other.overhead:.3f}x) beat Checkmate "
                f"({cm.overhead:.3f}x)")


@pytest.mark.parametrize("model_fixture,strategies,panel", [
    ("vgg16_profile_graph", LINEAR_STRATEGIES, "a: VGG16"),
    ("mobilenet_profile_graph", LINEAR_STRATEGIES, "b: MobileNet"),
    ("unet_profile_graph", NONLINEAR_STRATEGIES, "c: U-Net"),
])
def test_fig5_budget_sweep(benchmark, request, model_fixture, strategies, panel,
                           solve_service):
    graph = request.getfixturevalue(model_fixture)
    budgets = budget_grid(graph, num_budgets=4, low_fraction=0.45)

    # parallel=False: time-limited MILP cells can return different incumbents
    # under CPU contention, and this harness exists to regenerate the paper's
    # figures reproducibly (the plan cache still applies).
    points = run_once(benchmark, budget_sweep, graph, budgets,
                      strategies=strategies, ilp_time_limit_s=90,
                      service=solve_service, parallel=False)

    print(f"\n[Figure 5{panel}] {graph.name}")
    print(format_sweep(points))

    feasible = [p for p in points if p.feasible]
    assert feasible, "at least some (strategy, budget) points must be feasible"
    assert any(p.strategy.startswith("checkmate") for p in feasible)
    _checkmate_dominates(points)
    # Overheads are >= 1 and grow (weakly) as the budget shrinks for Checkmate.
    checkmate = sorted((p for p in feasible if p.strategy == "checkmate_ilp"),
                       key=lambda p: p.budget)
    overheads = [p.overhead for p in checkmate]
    assert all(a >= b - 1e-6 for a, b in zip(overheads, overheads[1:]))
