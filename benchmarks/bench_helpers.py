"""Importable helpers for the benchmark harness.

Kept outside ``conftest.py`` so benchmark modules never do ``from conftest
import ...`` -- conftest basenames are not unique across rootdirs and the
import used to resolve against whichever directory came first on ``sys.path``
(shadowing ``tests/conftest.py`` and vice versa).
"""

from __future__ import annotations

GiB = 2**30
MiB = 2**20


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing.

    Solver-backed experiments are too expensive to repeat for statistical
    timing, and their value here is the regenerated artifact rather than the
    wall-clock distribution.
    """
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
