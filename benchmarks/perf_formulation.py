#!/usr/bin/env python
"""Repeatable perf harness for the compiled-formulation fast path.

Measures, per experiment preset (stdlib ``time.perf_counter`` only, no
pytest-benchmark):

* **compile** -- one cold ``CompiledFormulation`` assembly, next to one cold
  loop-built ``MILPFormulation(...).build()`` for scale;
* **re-budget** -- ``with_budget`` on the compiled object (the per-budget cost
  a sweep actually pays);
* **solve** -- one LP solve of the compiled arrays (the HiGHS floor the
  Python-side optimizations sit on top of);
* **decode** -- vectorized solution decoding;
* **sweep** -- a cold-cache sequential 8-budget ``budget_sweep``, run twice in
  identical subprocesses: once against the *pre-PR tree* (extracted from git,
  ``--baseline-ref``) and once against the current tree.  Schedules are
  SHA-256'd on both sides, so the speedup claim is only reported together
  with a byte-identical (R, S) check.

The exact-MILP strategy is excluded from the sweep set by default: its cells
are HiGHS branch-and-cut bound, which this PR does not (and cannot) change --
the compiled layer targets everything around the solver.  Pass
``--strategies`` to override.

Writes ``BENCH_PR3.json`` at the repo root (``--out``).  CI runs
``--smoke --min-rebudget-speedup 10`` on the smallest preset as a loose
regression guard (relative check only; no flaky absolute-time assertions).
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import statistics
import subprocess
import sys
import tempfile
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO_ROOT, "src")
sys.path.insert(0, SRC)

#: Last commit before the compiled-formulation PR; the honest baseline.
PRE_PR_REF = "d815810"

DEFAULT_PRESETS = ("resnet_tiny", "vgg16", "segnet", "unet", "mobilenet")
SMOKE_PRESET = "resnet_tiny"

#: Figure-5 strategies minus the exact MILP (see module docstring).
DEFAULT_SWEEP_STRATEGIES = (
    "checkpoint_all", "chen_sqrt_n", "chen_greedy", "griewank_logn",
    "ap_sqrt_n", "ap_greedy", "linearized_sqrt_n", "linearized_greedy",
    "checkmate_approx",
)

#: Sweep driver executed in a subprocess against one source tree.  Only uses
#: APIs present both pre- and post-PR (budget_sweep / SolveService / solve).
SWEEP_DRIVER = r"""
import hashlib, json, sys, time
preset, num_budgets, strategies_csv, out_path = sys.argv[1:5]
from repro.experiments.presets import build_training_graph
from repro.experiments.budget_sweep import budget_grid, budget_sweep
from repro.service import SolveService, SolverOptions

graph = build_training_graph(preset)
budgets = budget_grid(graph, int(num_budgets))
strategies = strategies_csv.split(",")
service = SolveService()  # fresh in-memory plan cache: the sweep runs cold

t0 = time.perf_counter()
points = budget_sweep(graph, budgets, strategies=strategies,
                      service=service, parallel=False)
elapsed = time.perf_counter() - t0

# Re-dispatch every cell through the now-warm plan cache to hash the actual
# (R, S) matrices; zero additional solver invocations.
options = SolverOptions(time_limit_s=120.0)
digests = {}
for strategy in strategies:
    spec = service.registry.get(strategy)
    cell_budgets = budgets if spec.has_budget_knob else [max(budgets)]
    for budget in cell_budgets:
        try:
            result = service.solve(graph, strategy, budget, options)
        except Exception as exc:  # linear-only on non-linear graphs etc.
            digests[f"{strategy}@{budget}"] = f"error:{type(exc).__name__}"
            continue
        if result.matrices is None:
            digests[f"{strategy}@{budget}"] = None
        else:
            digests[f"{strategy}@{budget}"] = hashlib.sha256(
                result.matrices.R.tobytes() + result.matrices.S.tobytes()
            ).hexdigest()

json.dump({"preset": preset, "budgets": budgets, "elapsed_s": elapsed,
           "solver_calls": service.stats.solver_calls, "digests": digests},
          open(out_path, "w"))
"""


def time_once(fn) -> float:
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0


def time_repeat(fn, repeats: int) -> float:
    """Median of ``repeats`` timings (first call excluded as warmup)."""
    fn()
    return statistics.median(time_once(fn) for _ in range(repeats))


def micro_bench(preset: str, *, with_solve: bool = True) -> dict:
    import numpy as np
    from repro.experiments.budget_sweep import budget_grid
    from repro.experiments.presets import build_training_graph
    from repro.solvers import CompiledFormulation, MILPFormulation

    graph = build_training_graph(preset)
    budget = budget_grid(graph, 3)[1]

    legacy_build_s = time_repeat(lambda: MILPFormulation(graph, budget).build(), 3)
    compile_s = time_repeat(lambda: CompiledFormulation(graph), 3)
    compiled = CompiledFormulation(graph)
    rebudget_s = time_repeat(lambda: compiled.with_budget(budget), 50)

    arrays = compiled.with_budget(budget)
    rng = np.random.default_rng(0)
    x = rng.random(compiled.num_variables)
    decode_s = time_repeat(lambda: compiled.decode_matrices(x), 20)

    out = {
        "graph_nodes": graph.size,
        "graph_edges": graph.num_edges,
        "variables": compiled.num_variables,
        "constraints": int(arrays.A.shape[0]),
        "nnz": int(arrays.A.nnz),
        "legacy_build_s": legacy_build_s,
        "compile_s": compile_s,
        "rebudget_s": rebudget_s,
        "decode_s": decode_s,
        "rebudget_speedup_vs_compile": compile_s / rebudget_s if rebudget_s else None,
        "rebudget_speedup_vs_legacy_build": (
            legacy_build_s / rebudget_s if rebudget_s else None),
    }
    if with_solve:
        from scipy.optimize import Bounds, LinearConstraint, milp

        def lp_solve():
            milp(c=arrays.c,
                 constraints=LinearConstraint(arrays.A, arrays.constraint_lb,
                                              arrays.constraint_ub),
                 integrality=np.zeros_like(arrays.integrality),
                 bounds=Bounds(arrays.lb, arrays.ub),
                 options={"presolve": True})

        out["lp_solve_s"] = time_repeat(lp_solve, 3)
    return out


def run_sweep_subprocess(src_dir: str, preset: str, num_budgets: int,
                         strategies) -> dict:
    with tempfile.TemporaryDirectory() as tmp:
        driver = os.path.join(tmp, "driver.py")
        out_path = os.path.join(tmp, "out.json")
        with open(driver, "w") as fh:
            fh.write(SWEEP_DRIVER)
        env = dict(os.environ)
        env["PYTHONPATH"] = src_dir
        subprocess.run(
            [sys.executable, driver, preset, str(num_budgets),
             ",".join(strategies), out_path],
            check=True, env=env, cwd=tmp,
        )
        with open(out_path) as fh:
            return json.load(fh)


def extract_baseline_tree(ref: str) -> str:
    """``git archive`` the baseline ref into a temp dir; returns its src/."""
    tmp = tempfile.mkdtemp(prefix="prepr-baseline-")
    archive = subprocess.run(["git", "archive", ref], cwd=REPO_ROOT,
                             check=True, stdout=subprocess.PIPE)
    subprocess.run(["tar", "-x", "-C", tmp], input=archive.stdout, check=True)
    return os.path.join(tmp, "src")


def sweep_bench(preset: str, num_budgets: int, strategies, baseline_src) -> dict:
    current = run_sweep_subprocess(SRC, preset, num_budgets, strategies)
    out = {
        "budgets": num_budgets,
        "strategies": list(strategies),
        "current_s": current["elapsed_s"],
        "solver_calls": current["solver_calls"],
    }
    if baseline_src is None:
        out["baseline_s"] = None
        out["note"] = "baseline tree unavailable (not a git checkout?)"
        return out
    baseline = run_sweep_subprocess(baseline_src, preset, num_budgets, strategies)
    out["baseline_s"] = baseline["elapsed_s"]
    out["speedup"] = baseline["elapsed_s"] / current["elapsed_s"]
    out["schedules_identical"] = baseline["digests"] == current["digests"]
    out["cells_compared"] = len(current["digests"])
    return out


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n\n")[0])
    parser.add_argument("--presets", nargs="+", default=list(DEFAULT_PRESETS))
    parser.add_argument("--budgets", type=int, default=8)
    parser.add_argument("--strategies", nargs="+",
                        default=list(DEFAULT_SWEEP_STRATEGIES))
    parser.add_argument("--baseline-ref", default=PRE_PR_REF,
                        help="git ref of the pre-PR tree (default %(default)s)")
    parser.add_argument("--out", default=os.path.join(REPO_ROOT, "BENCH_PR3.json"))
    parser.add_argument("--smoke", action="store_true",
                        help="micro-bench only, smallest preset, no sweeps")
    parser.add_argument("--min-rebudget-speedup", type=float, default=None,
                        help="exit non-zero unless re-budget beats a cold "
                             "compile by at least this factor")
    args = parser.parse_args()

    report = {
        "pr": 3,
        "description": "compiled-formulation fast path: compile once per "
                       "graph, re-budget in O(1)",
        "baseline_ref": args.baseline_ref,
        "python": sys.version.split()[0],
        "presets": {},
    }

    if args.smoke:
        presets = [SMOKE_PRESET]
        baseline_src = None
    else:
        presets = args.presets
        try:
            baseline_src = extract_baseline_tree(args.baseline_ref)
        except (subprocess.CalledProcessError, OSError) as exc:
            print(f"warning: could not extract baseline {args.baseline_ref}: {exc}")
            baseline_src = None

    try:
        failed = run_benchmarks(args, presets, baseline_src, report)
    finally:
        if baseline_src is not None:
            shutil.rmtree(os.path.dirname(baseline_src), ignore_errors=True)

    if not args.smoke:
        with open(args.out, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.out}")
    return 1 if failed else 0


def run_benchmarks(args, presets, baseline_src, report) -> bool:
    failed = False
    for preset in presets:
        print(f"== {preset} ==")
        entry = {"micro": micro_bench(preset, with_solve=not args.smoke)}
        micro = entry["micro"]
        print(f"  compile (compiled) {micro['compile_s'] * 1e3:8.2f} ms   "
              f"(loop-built build {micro['legacy_build_s'] * 1e3:.2f} ms)")
        print(f"  re-budget          {micro['rebudget_s'] * 1e6:8.2f} us   "
              f"({micro['rebudget_speedup_vs_compile']:.0f}x faster than a "
              f"cold compile)")
        print(f"  decode             {micro['decode_s'] * 1e6:8.2f} us")
        if "lp_solve_s" in micro:
            print(f"  LP solve           {micro['lp_solve_s'] * 1e3:8.2f} ms")

        if not args.smoke:
            entry["sweep"] = sweep_bench(preset, args.budgets, args.strategies,
                                         baseline_src)
            sweep = entry["sweep"]
            if sweep.get("baseline_s") is not None:
                print(f"  sweep ({args.budgets} budgets)  pre-PR "
                      f"{sweep['baseline_s']:.2f} s -> {sweep['current_s']:.2f} s "
                      f"({sweep['speedup']:.2f}x, schedules identical: "
                      f"{sweep['schedules_identical']})")
                if not sweep["schedules_identical"]:
                    print("  ERROR: schedules differ from the pre-PR path")
                    failed = True
            else:
                print(f"  sweep ({args.budgets} budgets)  {sweep['current_s']:.2f} s "
                      f"(no baseline)")

        if args.min_rebudget_speedup is not None:
            ratio = micro["rebudget_speedup_vs_compile"] or 0.0
            if ratio < args.min_rebudget_speedup:
                print(f"  ERROR: re-budget only {ratio:.1f}x faster than compile "
                      f"(required {args.min_rebudget_speedup:.0f}x)")
                failed = True

        report["presets"][preset] = entry
    return failed


if __name__ == "__main__":
    raise SystemExit(main())
