#!/usr/bin/env python
"""Repeatable perf harness for the compiled-formulation fast path.

Measures, per experiment preset (stdlib ``time.perf_counter`` only, no
pytest-benchmark):

* **compile** -- one cold ``CompiledFormulation`` assembly, next to one cold
  loop-built ``MILPFormulation(...).build()`` for scale;
* **re-budget** -- ``with_budget`` on the compiled object (the per-budget cost
  a sweep actually pays);
* **solve** -- one LP solve of the compiled arrays (the HiGHS floor the
  Python-side optimizations sit on top of);
* **decode** -- vectorized solution decoding;
* **sweep** -- a cold-cache sequential 8-budget ``budget_sweep``, run twice in
  identical subprocesses: once against the *pre-PR tree* (extracted from git,
  ``--baseline-ref``) and once against the current tree.  Schedules are
  SHA-256'd on both sides, so the speedup claim is only reported together
  with a byte-identical (R, S) check.

The exact-MILP strategy is excluded from the sweep set by default: its cells
are HiGHS branch-and-cut bound, which this PR does not (and cannot) change --
the compiled layer targets everything around the solver.  Pass
``--strategies`` to override.

Writes ``BENCH_PR3.json`` at the repo root (``--out``).  CI runs
``--smoke --min-rebudget-speedup 10`` on the smallest preset as a loose
regression guard (relative check only; no flaky absolute-time assertions).

``--pr6`` switches the harness to the warm-start benchmarks and writes
``BENCH_PR6.json`` instead:

* **warm sweep** -- the same 8-budget exact-ILP sweep run twice in the same
  process against fresh plan caches: once cold (``sweep(warm_start=False)``,
  the PR 3 behavior) and once with warm-started descending-budget chains.
  Objectives are compared cell-for-cell (within the MIP gap) so the speedup
  claim is only reported together with a result-identical check.
* **pareto vs dense grid** -- ``SolveService.pareto()`` against a dense
  budget grid at the trace's own resolution; reports solver calls and checks
  both reach the same frontier staircase.

CI runs ``--pr6 --smoke --min-warm-speedup 1.5`` as the warm-vs-cold guard.

``--pr7`` measures the observability tax and writes ``BENCH_PR7.json``:

* **traced warm sweep** -- the same warm (plan-cache-hit) exact-ILP sweep
  timed with tracing off and with tracing + phase histograms on.  Warm cells
  are the worst case for instrumentation: the solve is microseconds, so the
  span bookkeeping is the largest relative slice it will ever be.
* **span micro-costs** -- nanoseconds per ``tracer.span()`` enter/exit with
  tracing disabled (must be ~an attribute check) and enabled.
* **prometheus render** -- one ``/v1/metrics?format=prometheus`` body render.

CI runs ``--pr7 --smoke --max-trace-overhead 0.02`` to hold the enabled
overhead under 2% on the warm sweep.

``--pr9`` measures the graph-canonicalization payoff and writes
``BENCH_PR9.json``:

* **formulation shrink** -- ``CompiledFormulation`` variables/constraints/nnz
  and compile time on the raw training graph vs the canonicalized one
  (``optimize_graph``: DCE + zero-cost-chain fusion).
* **solve equivalence** -- one exact-ILP solve of each at the same budget;
  objectives must be *identical* (the decoded-schedule cross-checks inside
  ``solve_canonicalized`` additionally prove the simulator peak matches).
* **execution proof** -- on executable presets the decoded schedule is run
  over real NumPy tensors and the :class:`ExecutionReport` must come back
  ``ok`` with outputs bit-identical to checkpoint-all.

CI runs ``--pr9 --smoke --min-nnz-reduction 0.05`` so the repeated-block
preset keeps shrinking by at least 5% nnz.

``--pr10`` measures the deadline-racing meta-solver and writes
``BENCH_PR10.json``:

* **quality-vs-deadline curve** -- one ``race`` solve per deadline on a
  ladder from sub-second to generous, each against a fresh (uncached)
  service, recording the winner, objective, wall time, whether the deadline
  fired, and how many entrants finished vs were reaped.
* **quality ceiling** -- a generous exact-ILP solve of the same cell; each
  curve point reports ``quality_ratio = race_objective / ceiling`` so the
  curve shows the race converging onto the exact optimum as the SLO relaxes.

CI runs ``--pr10 --smoke`` (resnet_tiny, short ladder) and fails if the race
cannot produce a feasible schedule at the longest smoke deadline.
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import statistics
import subprocess
import sys
import tempfile
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO_ROOT, "src")
sys.path.insert(0, SRC)

#: Last commit before the compiled-formulation PR; the honest baseline.
PRE_PR_REF = "d815810"

DEFAULT_PRESETS = ("resnet_tiny", "vgg16", "segnet", "unet", "mobilenet")
SMOKE_PRESET = "resnet_tiny"

#: The warm-start (PR 6) benchmark set: exact-ILP sweeps must stay tractable
#: cold, which rules the largest presets out.
PR6_PRESETS = ("linear_mlp", "linear_cnn", "resnet_tiny", "vgg16", "segnet")
PR6_PARETO_PRESET = "resnet_tiny"

#: The trace-overhead (PR 7) benchmark preset: warm cache-hit cells are the
#: instrumentation worst case, and the ISSUE's acceptance bar names this one.
PR7_PRESETS = ("resnet_tiny",)

#: Canonicalization (PR 9) benchmark set: three presets with zero-cost chains
#: the fusion pass collapses (vgg16/vgg19 have a flatten, deepblock is the
#: repeated-block showcase) plus linear_cnn as a no-change control.
PR9_PRESETS = ("vgg16", "vgg19", "deepblock", "linear_cnn")
PR9_SMOKE_PRESET = "deepblock"
#: Presets whose decoded schedule is additionally executed over real tensors.
PR9_EXEC_PRESETS = ("deepblock", "vgg16")

#: Deadline-race (PR 10) benchmark set and deadline ladder.  The fraction
#: pins one memorably tight budget cell (half the retained-activation
#: footprint) where the approximations and the exact ILP genuinely diverge.
PR10_PRESETS = ("resnet_tiny", "vgg16")
PR10_DEADLINES = (0.25, 0.5, 1.0, 2.0, 5.0, 10.0)
PR10_SMOKE_DEADLINES = (0.5, 2.0)
PR10_FRACTION = 0.5
PR10_CEILING_LIMIT_S = 120.0

#: Figure-5 strategies minus the exact MILP (see module docstring).
DEFAULT_SWEEP_STRATEGIES = (
    "checkpoint_all", "chen_sqrt_n", "chen_greedy", "griewank_logn",
    "ap_sqrt_n", "ap_greedy", "linearized_sqrt_n", "linearized_greedy",
    "checkmate_approx",
)

#: Sweep driver executed in a subprocess against one source tree.  Only uses
#: APIs present both pre- and post-PR (budget_sweep / SolveService / solve).
SWEEP_DRIVER = r"""
import hashlib, json, sys, time
preset, num_budgets, strategies_csv, out_path = sys.argv[1:5]
from repro.experiments.presets import build_training_graph
from repro.experiments.budget_sweep import budget_grid, budget_sweep
from repro.service import SolveService, SolverOptions

graph = build_training_graph(preset)
budgets = budget_grid(graph, int(num_budgets))
strategies = strategies_csv.split(",")
service = SolveService()  # fresh in-memory plan cache: the sweep runs cold

t0 = time.perf_counter()
points = budget_sweep(graph, budgets, strategies=strategies,
                      service=service, parallel=False)
elapsed = time.perf_counter() - t0

# Re-dispatch every cell through the now-warm plan cache to hash the actual
# (R, S) matrices; zero additional solver invocations.
options = SolverOptions(time_limit_s=120.0)
digests = {}
for strategy in strategies:
    spec = service.registry.get(strategy)
    cell_budgets = budgets if spec.has_budget_knob else [max(budgets)]
    for budget in cell_budgets:
        try:
            result = service.solve(graph, strategy, budget, options)
        except Exception as exc:  # linear-only on non-linear graphs etc.
            digests[f"{strategy}@{budget}"] = f"error:{type(exc).__name__}"
            continue
        if result.matrices is None:
            digests[f"{strategy}@{budget}"] = None
        else:
            digests[f"{strategy}@{budget}"] = hashlib.sha256(
                result.matrices.R.tobytes() + result.matrices.S.tobytes()
            ).hexdigest()

json.dump({"preset": preset, "budgets": budgets, "elapsed_s": elapsed,
           "solver_calls": service.stats.solver_calls, "digests": digests},
          open(out_path, "w"))
"""


def time_once(fn) -> float:
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0


def time_repeat(fn, repeats: int) -> float:
    """Median of ``repeats`` timings (first call excluded as warmup)."""
    fn()
    return statistics.median(time_once(fn) for _ in range(repeats))


def micro_bench(preset: str, *, with_solve: bool = True) -> dict:
    import numpy as np
    from repro.experiments.budget_sweep import budget_grid
    from repro.experiments.presets import build_training_graph
    from repro.solvers import CompiledFormulation, MILPFormulation

    graph = build_training_graph(preset)
    budget = budget_grid(graph, 3)[1]

    legacy_build_s = time_repeat(lambda: MILPFormulation(graph, budget).build(), 3)
    compile_s = time_repeat(lambda: CompiledFormulation(graph), 3)
    compiled = CompiledFormulation(graph)
    rebudget_s = time_repeat(lambda: compiled.with_budget(budget), 50)

    arrays = compiled.with_budget(budget)
    rng = np.random.default_rng(0)
    x = rng.random(compiled.num_variables)
    decode_s = time_repeat(lambda: compiled.decode_matrices(x), 20)

    out = {
        "graph_nodes": graph.size,
        "graph_edges": graph.num_edges,
        "variables": compiled.num_variables,
        "constraints": int(arrays.A.shape[0]),
        "nnz": int(arrays.A.nnz),
        "legacy_build_s": legacy_build_s,
        "compile_s": compile_s,
        "rebudget_s": rebudget_s,
        "decode_s": decode_s,
        "rebudget_speedup_vs_compile": compile_s / rebudget_s if rebudget_s else None,
        "rebudget_speedup_vs_legacy_build": (
            legacy_build_s / rebudget_s if rebudget_s else None),
    }
    if with_solve:
        from scipy.optimize import Bounds, LinearConstraint, milp

        def lp_solve():
            milp(c=arrays.c,
                 constraints=LinearConstraint(arrays.A, arrays.constraint_lb,
                                              arrays.constraint_ub),
                 integrality=np.zeros_like(arrays.integrality),
                 bounds=Bounds(arrays.lb, arrays.ub),
                 options={"presolve": True})

        out["lp_solve_s"] = time_repeat(lp_solve, 3)
    return out


def run_sweep_subprocess(src_dir: str, preset: str, num_budgets: int,
                         strategies) -> dict:
    with tempfile.TemporaryDirectory() as tmp:
        driver = os.path.join(tmp, "driver.py")
        out_path = os.path.join(tmp, "out.json")
        with open(driver, "w") as fh:
            fh.write(SWEEP_DRIVER)
        env = dict(os.environ)
        env["PYTHONPATH"] = src_dir
        subprocess.run(
            [sys.executable, driver, preset, str(num_budgets),
             ",".join(strategies), out_path],
            check=True, env=env, cwd=tmp,
        )
        with open(out_path) as fh:
            return json.load(fh)


def extract_baseline_tree(ref: str) -> str:
    """``git archive`` the baseline ref into a temp dir; returns its src/."""
    tmp = tempfile.mkdtemp(prefix="prepr-baseline-")
    archive = subprocess.run(["git", "archive", ref], cwd=REPO_ROOT,
                             check=True, stdout=subprocess.PIPE)
    subprocess.run(["tar", "-x", "-C", tmp], input=archive.stdout, check=True)
    return os.path.join(tmp, "src")


def sweep_bench(preset: str, num_budgets: int, strategies, baseline_src) -> dict:
    current = run_sweep_subprocess(SRC, preset, num_budgets, strategies)
    out = {
        "budgets": num_budgets,
        "strategies": list(strategies),
        "current_s": current["elapsed_s"],
        "solver_calls": current["solver_calls"],
    }
    if baseline_src is None:
        out["baseline_s"] = None
        out["note"] = "baseline tree unavailable (not a git checkout?)"
        return out
    baseline = run_sweep_subprocess(baseline_src, preset, num_budgets, strategies)
    out["baseline_s"] = baseline["elapsed_s"]
    out["speedup"] = baseline["elapsed_s"] / current["elapsed_s"]
    out["schedules_identical"] = baseline["digests"] == current["digests"]
    out["cells_compared"] = len(current["digests"])
    return out


def warm_sweep_bench(preset: str, num_budgets: int) -> dict:
    """Same-process warm-vs-cold exact-ILP sweep over ``num_budgets`` cells.

    The budgets are the repo's canonical :func:`budget_grid` -- the same grid
    ``budget_sweep`` (and hence the PR 3 cold path) solves.  Both runs use
    fresh plan caches and ``parallel=False`` (isolating the warm-chain effect
    from thread scheduling); the process-wide formulation cache is populated
    up front so neither run pays the one-off compile.  The cold run is
    ``sweep(warm_start=False)``: per cell it is exactly the PR 3 behavior
    (one full HiGHS solve), modulo the new below-floor shortcut, which fires
    for cold cells too -- so the reported speedup *understates* the win over
    a true PR 3 binary on grids that dip below the feasibility floor.
    """
    from repro.experiments.budget_sweep import budget_grid
    from repro.experiments.presets import build_training_graph
    from repro.service import SolveService, SweepCell
    from repro.solvers import get_formulation_cache

    graph = build_training_graph(preset)
    get_formulation_cache().get(graph)
    cells = [SweepCell("checkmate_ilp", float(b))
             for b in budget_grid(graph, num_budgets)]

    cold_svc = SolveService()
    t0 = time.perf_counter()
    cold = cold_svc.sweep(graph, cells, parallel=False, warm_start=False)
    cold_s = time.perf_counter() - t0

    warm_svc = SolveService()
    t0 = time.perf_counter()
    warm = warm_svc.sweep(graph, cells, parallel=False, warm_start=True)
    warm_s = time.perf_counter() - t0

    mismatches = []
    for cell, c, w in zip(cells, cold, warm):
        if c.feasible != w.feasible:
            mismatches.append({"budget": cell.budget, "cold": c.feasible,
                               "warm": w.feasible})
        elif c.feasible and abs(c.compute_cost - w.compute_cost) > 1e-4 * max(
                abs(c.compute_cost), abs(w.compute_cost), 1.0):
            mismatches.append({"budget": cell.budget, "cold": c.compute_cost,
                               "warm": w.compute_cost})

    stats = warm_svc.statistics()
    return {
        "budgets": num_budgets,
        "strategy": "checkmate_ilp",
        "cold_s": cold_s,
        "warm_s": warm_s,
        "speedup": cold_s / warm_s if warm_s else None,
        "objectives_identical": not mismatches,
        "mismatches": mismatches,
        "warm_seeds": stats["warm_seeds"],
        "incumbent_prunes": stats["incumbent_prunes"],
        "bound_skips": stats["bound_skips"],
        "infeasible_shortcuts": stats["infeasible_shortcuts"],
        "warm_statuses": sorted({r.solver_status for r in warm}),
    }


def pareto_bench(preset: str) -> dict:
    """Bisection frontier trace vs a dense grid at the trace's resolution."""
    import numpy as np
    from repro.experiments.presets import build_training_graph
    from repro.service import SolveService, SweepCell

    graph = build_training_graph(preset)
    t0 = time.perf_counter()
    front = SolveService().pareto(graph, "checkmate_ilp")
    trace_s = time.perf_counter() - t0

    steps = int(round((front.high - front.low) / front.resolution))
    grid = [float(b) for b in np.linspace(front.low, front.high, steps + 1)]
    dense_svc = SolveService()
    t0 = time.perf_counter()
    dense = dense_svc.sweep(graph, [SweepCell("checkmate_ilp", b) for b in grid],
                            parallel=False)
    dense_s = time.perf_counter() - t0

    def staircase(costs, rtol=1e-3):
        out = []
        for c in costs:
            if not out or abs(c - out[-1]) > rtol * max(abs(out[-1]), 1.0):
                out.append(c)
        return out

    dense_steps = staircase([r.compute_cost for r in dense if r.feasible])
    front_steps = staircase([p.compute_cost for p in front.feasible_points])
    same = len(dense_steps) == len(front_steps) and all(
        abs(a - b) <= 1e-3 * max(abs(a), abs(b), 1.0)
        for a, b in zip(dense_steps, front_steps))
    return {
        "resolution": front.resolution,
        "trace_solver_calls": front.solver_calls,
        "dense_solver_calls": len(grid),
        "call_ratio": front.solver_calls / len(grid),
        "trace_s": trace_s,
        "dense_s": dense_s,
        "num_knees": len(front.knees()),
        "same_frontier": same,
        "frontier_costs": front_steps,
    }


def trace_overhead_bench(preset: str, num_budgets: int, *,
                         pairs: int = 400, trials: int = 3) -> dict:
    """Warm-sweep wall time with tracing off vs on (same service, same cells).

    The plan cache is warmed first, so every timed cell is a cache hit --
    microseconds of real work against which the tracer's spans, context
    managers and histogram observes are as expensive, relatively, as they
    ever get.  Each measurement *pairs* one traced sweep immediately after
    one untraced sweep, so CPU-frequency drift and scheduler noise hit both
    sides equally; the estimator is ``median(on - off) / median(off)`` over
    hundreds of pairs, which is robust to the heavy right tail that wall
    clocks on shared machines produce (min- or mean-based estimators swing
    by multiples of the true delta here).  ``trials`` repeats the whole
    pairing and the median trial is reported.
    """
    from repro.experiments.budget_sweep import budget_grid
    from repro.experiments.presets import build_training_graph
    from repro.obs import get_tracer, install_phase_histograms
    from repro.service import SolveService, SweepCell

    graph = build_training_graph(preset)
    cells = [SweepCell("checkmate_ilp", float(b))
             for b in budget_grid(graph, num_budgets)]
    service = SolveService()
    service.sweep(graph, cells, parallel=False)  # warm the plan cache

    def one_sweep():
        start = time.perf_counter()
        service.sweep(graph, cells, parallel=False)
        return time.perf_counter() - start

    tracer = get_tracer()
    install_phase_histograms()
    for enabled in (False, True):  # warm both code paths
        (tracer.enable() if enabled else tracer.disable())
        for _ in range(50):
            one_sweep()
    tracer.disable()

    trial_stats = []
    for _ in range(trials):
        deltas, offs = [], []
        for _ in range(pairs):
            tracer.disable()
            off = one_sweep()
            tracer.enable()
            on = one_sweep()
            deltas.append(on - off)
            offs.append(off)
        tracer.disable()
        off_s = statistics.median(offs)
        trial_stats.append((statistics.median(deltas) / off_s, off_s))
    trial_stats.sort()
    overhead, off_s = trial_stats[len(trial_stats) // 2]
    on_s = off_s * (1.0 + overhead)

    # Per-span enter/exit micro-cost, both modes.
    spins = 20_000

    def spin():
        span = tracer.span
        for _ in range(spins):
            with span("bench-span"):
                pass

    disabled_spin_s = time_repeat(spin, 5)
    tracer.enable()
    enabled_spin_s = time_repeat(spin, 5)
    tracer.disable()
    tracer.store.clear()

    from repro.obs import get_metrics_registry
    registry = get_metrics_registry()
    render_s = time_repeat(lambda: registry.render_prometheus(), 5)

    return {
        "strategy": "checkmate_ilp",
        "budgets": num_budgets,
        "pairs": pairs,
        "trials": trials,
        "warm_sweep_off_s": off_s,
        "warm_sweep_on_s": on_s,
        "overhead_fraction": overhead,
        "span_disabled_ns": disabled_spin_s / spins * 1e9,
        "span_enabled_ns": enabled_spin_s / spins * 1e9,
        "prometheus_render_s": render_s,
    }


def canonicalization_bench(preset: str, *, budget_fraction: float = 0.8,
                           execute: bool = False) -> dict:
    """Raw-vs-canonicalized formulation sizes and one equal-objective solve.

    The budget sits at ``overhead + 0.8 * total activation memory`` -- tight
    enough that the exact ILP has to checkpoint, loose enough that both
    formulations close the gap quickly, so objective equality is a meaningful
    byte-for-byte check rather than a trivial checkpoint-all tie.
    """
    from repro.analysis import optimize_graph
    from repro.experiments.presets import build_training_graph
    from repro.service import SolveService
    from repro.solvers import CompiledFormulation

    graph = build_training_graph(preset)
    t0 = time.perf_counter()
    opt = optimize_graph(graph)
    optimize_s = time.perf_counter() - t0

    raw_stats = CompiledFormulation(graph).stats
    opt_stats = CompiledFormulation(opt.graph).stats

    budget = float(int(graph.constant_overhead
                       + budget_fraction * graph.total_activation_memory()))

    raw_svc = SolveService()
    t0 = time.perf_counter()
    raw = raw_svc.solve(graph, "checkmate_ilp", budget)
    raw_solve_s = time.perf_counter() - t0

    canon_svc = SolveService()
    t0 = time.perf_counter()
    canon = canon_svc.solve_canonicalized(graph, "checkmate_ilp", budget)
    canon_solve_s = time.perf_counter() - t0

    out = {
        "nodes_raw": graph.size,
        "nodes_optimized": opt.graph.size,
        "pass_stats": opt.stats,
        "optimize_s": optimize_s,
        "variables_raw": raw_stats["variables"],
        "variables_optimized": opt_stats["variables"],
        "variables_reduction": 1.0 - opt_stats["variables"] / raw_stats["variables"],
        "nnz_raw": raw_stats["nnz"],
        "nnz_optimized": opt_stats["nnz"],
        "nnz_reduction": 1.0 - opt_stats["nnz"] / raw_stats["nnz"],
        "compile_raw_s": raw_stats["compile_time_s"],
        "compile_optimized_s": opt_stats["compile_time_s"],
        "budget": budget,
        "solve_raw_s": raw_solve_s,
        "solve_canonicalized_s": canon_solve_s,
        "objective_raw": raw.compute_cost,
        "objective_canonicalized": canon.compute_cost,
        # Byte-identical objectives: decoded schedules replay the fused
        # members exactly when the fused node ran, so costs match exactly.
        "objectives_identical": (raw.feasible == canon.feasible
                                 and raw.compute_cost == canon.compute_cost),
        "peak_raw": raw.peak_memory,
        "peak_canonicalized": canon.peak_memory,
        "analysis_extra": canon.extra.get("analysis"),
    }
    if execute:
        from repro.execution import build_execution_report
        from repro.experiments.presets import build_numeric_training_graph

        numeric = build_numeric_training_graph(preset)
        report = build_execution_report(numeric, canon)
        out["execution"] = {
            "ok": report.ok,
            "outputs_match": report.outputs_match,
            "measured_peak_bytes": report.measured_peak_bytes,
            "within_budget": report.within_budget,
        }
    return out


def deadline_curve_bench(preset: str, deadlines, fraction: float = PR10_FRACTION):
    """Race one budget cell under a ladder of deadlines; report the curve."""
    from repro.experiments.presets import build_training_graph
    from repro.service import SolveService, SolverOptions

    graph = build_training_graph(preset)
    budget = int(graph.constant_overhead
                 + graph.total_activation_memory() * fraction)

    # Quality ceiling: a generous exact solve of the same cell.  The race's
    # objective can never beat it, so quality_ratio >= 1 and should approach
    # 1 as the deadline relaxes.
    ceiling_service = SolveService(cache=None)
    t0 = time.perf_counter()
    ceiling = ceiling_service.solve(
        graph, "checkmate_ilp", budget,
        SolverOptions(time_limit_s=PR10_CEILING_LIMIT_S, generate_plan=False))
    ceiling_s = time.perf_counter() - t0
    ceiling_cost = float(ceiling.compute_cost) if ceiling.feasible else None

    curve = []
    for deadline in deadlines:
        # A fresh service per point: every race runs cold, no plan-cache
        # replay flattering the short deadlines.
        service = SolveService(cache=None)
        t0 = time.perf_counter()
        result = service.solve(
            graph, "race", budget,
            SolverOptions(deadline_s=float(deadline), generate_plan=False))
        wall = time.perf_counter() - t0
        race = (result.extra or {}).get("race", {})
        lanes = race.get("entrants", [])
        objective = float(result.compute_cost) if result.feasible else None
        curve.append({
            "deadline_s": float(deadline),
            "feasible": bool(result.feasible),
            "winner": race.get("winner"),
            "objective": objective,
            "quality_ratio": (objective / ceiling_cost
                              if objective is not None and ceiling_cost
                              else None),
            "wall_s": wall,
            "deadline_hit": bool(race.get("deadline_hit")),
            "entrants_finished": sum(1 for l in lanes
                                     if l.get("wall_s") is not None),
            "entrants_total": len(lanes),
        })
    return {
        "budget": budget,
        "budget_fraction": fraction,
        "ceiling_objective": ceiling_cost,
        "ceiling_status": ceiling.solver_status,
        "ceiling_s": ceiling_s,
        "curve": curve,
    }


def run_pr10_benchmarks(args, presets, report) -> bool:
    failed = False
    deadlines = PR10_SMOKE_DEADLINES if args.smoke else PR10_DEADLINES
    for preset in presets:
        print(f"== {preset} ==")
        bench = deadline_curve_bench(preset, deadlines)
        report["presets"][preset] = bench
        print(f"  budget {bench['budget']} ({bench['budget_fraction']:.0%} of "
              f"retained activations)   ceiling "
              f"{bench['ceiling_objective']!r} "
              f"({bench['ceiling_status']}, {bench['ceiling_s']:.1f} s)")
        for point in bench["curve"]:
            ratio = point["quality_ratio"]
            print(f"  deadline {point['deadline_s']:6.2f} s  "
                  f"winner {point['winner'] or '-':24s} "
                  f"quality {f'{ratio:.3f}x' if ratio else 'infeasible':>12s} "
                  f"wall {point['wall_s']:5.2f} s  "
                  f"{point['entrants_finished']}/{point['entrants_total']} "
                  f"entrants finished")
        last = bench["curve"][-1]
        if not last["feasible"]:
            print(f"  ERROR: race infeasible even at the longest deadline "
                  f"({last['deadline_s']} s)")
            failed = True
        if (args.max_quality_ratio is not None and last["quality_ratio"]
                and last["quality_ratio"] > args.max_quality_ratio):
            print(f"  ERROR: quality {last['quality_ratio']:.3f}x at the "
                  f"longest deadline (budget {args.max_quality_ratio:.2f}x)")
            failed = True
    return failed


def run_pr9_benchmarks(args, presets, report) -> bool:
    failed = False
    for preset in presets:
        print(f"== {preset} ==")
        execute = preset in PR9_EXEC_PRESETS and not args.smoke
        bench = canonicalization_bench(preset, execute=execute)
        report["presets"][preset] = bench
        print(f"  nodes {bench['nodes_raw']} -> {bench['nodes_optimized']}   "
              f"variables {bench['variables_raw']} -> "
              f"{bench['variables_optimized']} "
              f"(-{bench['variables_reduction']:.1%})   "
              f"nnz {bench['nnz_raw']} -> {bench['nnz_optimized']} "
              f"(-{bench['nnz_reduction']:.1%})")
        print(f"  optimize {bench['optimize_s'] * 1e3:.2f} ms   compile "
              f"{bench['compile_raw_s'] * 1e3:.2f} -> "
              f"{bench['compile_optimized_s'] * 1e3:.2f} ms   solve "
              f"{bench['solve_raw_s']:.2f} -> "
              f"{bench['solve_canonicalized_s']:.2f} s")
        print(f"  objective {bench['objective_raw']!r} == "
              f"{bench['objective_canonicalized']!r}: "
              f"{bench['objectives_identical']}")
        if not bench["objectives_identical"]:
            print("  ERROR: canonicalized objective differs from the raw solve")
            failed = True
        if "execution" in bench:
            ex = bench["execution"]
            print(f"  executed decoded schedule: ok={ex['ok']} "
                  f"outputs_match={ex['outputs_match']} "
                  f"measured peak {ex['measured_peak_bytes']}")
            if not ex["ok"]:
                print("  ERROR: decoded schedule failed the execution report")
                failed = True
        if (args.min_nnz_reduction is not None and preset == PR9_SMOKE_PRESET
                and bench["nnz_reduction"] < args.min_nnz_reduction):
            print(f"  ERROR: nnz only shrank {bench['nnz_reduction']:.1%} "
                  f"(required {args.min_nnz_reduction:.0%})")
            failed = True
    return failed


def run_pr7_benchmarks(args, presets, report) -> bool:
    failed = False
    for preset in presets:
        print(f"== {preset} ==")
        bench = trace_overhead_bench(preset, args.budgets)
        report["presets"][preset] = {"trace_overhead": bench}
        overhead = bench["overhead_fraction"]
        print(f"  warm sweep ({args.budgets} budgets)  tracing off "
              f"{bench['warm_sweep_off_s'] * 1e3:.3f} ms -> on "
              f"{bench['warm_sweep_on_s'] * 1e3:.3f} ms "
              f"({overhead:+.2%} overhead)")
        print(f"  span enter/exit    disabled {bench['span_disabled_ns']:6.0f} ns"
              f"   enabled {bench['span_enabled_ns']:6.0f} ns")
        print(f"  prometheus render  {bench['prometheus_render_s'] * 1e3:8.2f} ms")
        if (args.max_trace_overhead is not None
                and overhead is not None and overhead > args.max_trace_overhead):
            print(f"  ERROR: traced warm sweep {overhead:.2%} slower than "
                  f"untraced (budget {args.max_trace_overhead:.0%})")
            failed = True
    return failed


def run_pr6_benchmarks(args, presets, report) -> bool:
    failed = False
    for preset in presets:
        print(f"== {preset} ==")
        sweep = warm_sweep_bench(preset, args.budgets)
        report["presets"][preset] = {"warm_sweep": sweep}
        print(f"  warm sweep ({args.budgets} budgets)  cold "
              f"{sweep['cold_s']:.2f} s -> warm {sweep['warm_s']:.2f} s "
              f"({sweep['speedup']:.2f}x, objectives identical: "
              f"{sweep['objectives_identical']}; "
              f"{sweep['incumbent_prunes']} prunes, "
              f"{sweep['bound_skips']} bound skips)")
        if not sweep["objectives_identical"]:
            print(f"  ERROR: warm objectives differ: {sweep['mismatches']}")
            failed = True
        if (args.min_warm_speedup is not None
                and (sweep["speedup"] or 0.0) < args.min_warm_speedup):
            print(f"  ERROR: warm sweep only {sweep['speedup']:.2f}x faster "
                  f"than cold (required {args.min_warm_speedup:.1f}x)")
            failed = True

    if not args.smoke:
        preset = PR6_PARETO_PRESET
        print(f"== pareto vs dense grid ({preset}) ==")
        pareto = pareto_bench(preset)
        report["pareto"] = {"preset": preset, **pareto}
        print(f"  trace {pareto['trace_solver_calls']} solver calls vs dense "
              f"{pareto['dense_solver_calls']} "
              f"({pareto['call_ratio']:.2f}x), {pareto['num_knees']} knees, "
              f"same frontier: {pareto['same_frontier']}")
        if not pareto["same_frontier"]:
            print("  ERROR: bisection missed part of the dense-grid frontier")
            failed = True
        if pareto["trace_solver_calls"] * 2 > pareto["dense_solver_calls"]:
            print("  ERROR: trace spent more than half the dense grid's calls")
            failed = True
    return failed


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n\n")[0])
    parser.add_argument("--presets", nargs="+", default=None)
    parser.add_argument("--budgets", type=int, default=8)
    parser.add_argument("--strategies", nargs="+",
                        default=list(DEFAULT_SWEEP_STRATEGIES))
    parser.add_argument("--baseline-ref", default=PRE_PR_REF,
                        help="git ref of the pre-PR tree (default %(default)s)")
    parser.add_argument("--out", default=None,
                        help="report path (default BENCH_PR3.json, or "
                             "BENCH_PR6.json with --pr6)")
    parser.add_argument("--smoke", action="store_true",
                        help="micro-bench only, smallest preset, no sweeps")
    parser.add_argument("--min-rebudget-speedup", type=float, default=None,
                        help="exit non-zero unless re-budget beats a cold "
                             "compile by at least this factor")
    parser.add_argument("--pr6", action="store_true",
                        help="run the warm-start sweep + pareto benchmarks "
                             "and write BENCH_PR6.json")
    parser.add_argument("--min-warm-speedup", type=float, default=None,
                        help="with --pr6: exit non-zero unless the warm sweep "
                             "beats the cold sweep by at least this factor")
    parser.add_argument("--pr7", action="store_true",
                        help="run the tracing-overhead benchmarks and write "
                             "BENCH_PR7.json")
    parser.add_argument("--max-trace-overhead", type=float, default=None,
                        metavar="FRACTION",
                        help="with --pr7: exit non-zero if the traced warm "
                             "sweep is more than this fraction slower "
                             "(e.g. 0.02 for 2%%)")
    parser.add_argument("--pr9", action="store_true",
                        help="run the graph-canonicalization benchmarks and "
                             "write BENCH_PR9.json")
    parser.add_argument("--min-nnz-reduction", type=float, default=None,
                        metavar="FRACTION",
                        help="with --pr9: exit non-zero unless the "
                             "repeated-block preset's nnz shrinks by at "
                             "least this fraction (e.g. 0.05 for 5%%)")
    parser.add_argument("--pr10", action="store_true",
                        help="run the deadline-race quality-vs-deadline "
                             "benchmarks and write BENCH_PR10.json")
    parser.add_argument("--max-quality-ratio", type=float, default=None,
                        metavar="RATIO",
                        help="with --pr10: exit non-zero if the longest "
                             "deadline's objective exceeds the exact ceiling "
                             "by more than this factor (e.g. 1.05)")
    args = parser.parse_args()

    if args.pr10:
        report = {
            "pr": 10,
            "description": "deadline-racing meta-solver: quality-vs-deadline "
                           "curves against the exact-ILP ceiling",
            "python": sys.version.split()[0],
            "presets": {},
        }
        presets = args.presets or (
            [SMOKE_PRESET] if args.smoke else list(PR10_PRESETS))
        failed = run_pr10_benchmarks(args, presets, report)
        out = args.out or os.path.join(REPO_ROOT, "BENCH_PR10.json")
    elif args.pr9:
        report = {
            "pr": 9,
            "description": "graph canonicalization: DCE + zero-cost-chain "
                           "fusion, formulation shrink, equal-objective "
                           "solves, executed decoded schedules",
            "python": sys.version.split()[0],
            "presets": {},
        }
        presets = args.presets or (
            [PR9_SMOKE_PRESET] if args.smoke else list(PR9_PRESETS))
        failed = run_pr9_benchmarks(args, presets, report)
        out = args.out or os.path.join(REPO_ROOT, "BENCH_PR9.json")
    elif args.pr7:
        report = {
            "pr": 7,
            "description": "tracing/metrics overhead: warm sweep off vs on, "
                           "span micro-costs, prometheus render",
            "python": sys.version.split()[0],
            "presets": {},
        }
        presets = args.presets or (
            [SMOKE_PRESET] if args.smoke else list(PR7_PRESETS))
        failed = run_pr7_benchmarks(args, presets, report)
        out = args.out or os.path.join(REPO_ROOT, "BENCH_PR7.json")
    elif args.pr6:
        report = {
            "pr": 6,
            "description": "warm-started incremental sweeps and bisection "
                           "pareto tracing",
            "python": sys.version.split()[0],
            "presets": {},
        }
        presets = args.presets or (
            [SMOKE_PRESET] if args.smoke else list(PR6_PRESETS))
        failed = run_pr6_benchmarks(args, presets, report)
        out = args.out or os.path.join(REPO_ROOT, "BENCH_PR6.json")
    else:
        report = {
            "pr": 3,
            "description": "compiled-formulation fast path: compile once per "
                           "graph, re-budget in O(1)",
            "baseline_ref": args.baseline_ref,
            "python": sys.version.split()[0],
            "presets": {},
        }
        if args.smoke:
            presets = [SMOKE_PRESET]
            baseline_src = None
        else:
            presets = args.presets or list(DEFAULT_PRESETS)
            try:
                baseline_src = extract_baseline_tree(args.baseline_ref)
            except (subprocess.CalledProcessError, OSError) as exc:
                print(f"warning: could not extract baseline "
                      f"{args.baseline_ref}: {exc}")
                baseline_src = None

        try:
            failed = run_benchmarks(args, presets, baseline_src, report)
        finally:
            if baseline_src is not None:
                shutil.rmtree(os.path.dirname(baseline_src), ignore_errors=True)
        out = args.out or os.path.join(REPO_ROOT, "BENCH_PR3.json")

    if not args.smoke:
        with open(out, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {out}")
    return 1 if failed else 0


def run_benchmarks(args, presets, baseline_src, report) -> bool:
    failed = False
    for preset in presets:
        print(f"== {preset} ==")
        entry = {"micro": micro_bench(preset, with_solve=not args.smoke)}
        micro = entry["micro"]
        print(f"  compile (compiled) {micro['compile_s'] * 1e3:8.2f} ms   "
              f"(loop-built build {micro['legacy_build_s'] * 1e3:.2f} ms)")
        print(f"  re-budget          {micro['rebudget_s'] * 1e6:8.2f} us   "
              f"({micro['rebudget_speedup_vs_compile']:.0f}x faster than a "
              f"cold compile)")
        print(f"  decode             {micro['decode_s'] * 1e6:8.2f} us")
        if "lp_solve_s" in micro:
            print(f"  LP solve           {micro['lp_solve_s'] * 1e3:8.2f} ms")

        if not args.smoke:
            entry["sweep"] = sweep_bench(preset, args.budgets, args.strategies,
                                         baseline_src)
            sweep = entry["sweep"]
            if sweep.get("baseline_s") is not None:
                print(f"  sweep ({args.budgets} budgets)  pre-PR "
                      f"{sweep['baseline_s']:.2f} s -> {sweep['current_s']:.2f} s "
                      f"({sweep['speedup']:.2f}x, schedules identical: "
                      f"{sweep['schedules_identical']})")
                if not sweep["schedules_identical"]:
                    print("  ERROR: schedules differ from the pre-PR path")
                    failed = True
            else:
                print(f"  sweep ({args.budgets} budgets)  {sweep['current_s']:.2f} s "
                      f"(no baseline)")

        if args.min_rebudget_speedup is not None:
            ratio = micro["rebudget_speedup_vs_compile"] or 0.0
            if ratio < args.min_rebudget_speedup:
                print(f"  ERROR: re-budget only {ratio:.1f}x faster than compile "
                      f"(required {args.min_rebudget_speedup:.0f}x)")
                failed = True

        report["presets"][preset] = entry
    return failed


if __name__ == "__main__":
    raise SystemExit(main())
