"""Appendix A: integrality gap and solve time, partitioned vs unpartitioned MILP."""

from bench_helpers import run_once

from repro.experiments import integrality_gap_experiment


def test_appendixA_partitioned_formulation(benchmark):
    """The frontier-advancing MILP on the 8-layer unit instance solves in seconds."""
    result = run_once(benchmark, integrality_gap_experiment, budget=4,
                      include_unpartitioned=False, time_limit_s=120)
    print(f"\n[Appendix A, partitioned] {result.summary()}")
    assert result.partitioned_ilp_cost is not None
    # Paper: partitioned integrality gap 1.18 (vs 21.56 unpartitioned) and a
    # sub-second solve (0.23 s in Gurobi); we allow generous slack for HiGHS.
    assert result.partitioned_gap is not None
    assert result.partitioned_gap < 2.0
    assert result.partitioned_solve_time_s < 60


def test_appendixA_unpartitioned_formulation(benchmark):
    """The unpartitioned MILP is dramatically harder: looser relaxation, slower solve."""
    result = run_once(benchmark, integrality_gap_experiment, budget=4,
                      include_unpartitioned=True, time_limit_s=60)
    print(f"\n[Appendix A, both] {result.summary()}")
    assert result.partitioned_gap is not None
    if result.unpartitioned_gap is not None:
        # Paper: 21.56 vs 1.18 -- the unpartitioned relaxation is far looser.
        assert result.unpartitioned_gap > 2 * result.partitioned_gap
    # And the unpartitioned solve takes (much) longer than the partitioned one.
    assert result.unpartitioned_solve_time_s >= result.partitioned_solve_time_s
