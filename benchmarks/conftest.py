"""Shared fixtures and helpers for the benchmark harness.

Each benchmark module regenerates one table or figure of the paper at CI scale
(small batch sizes / resolutions, short MILP time limits) so the whole harness
runs on a single CPU core.  The printed output of each benchmark is the text
analogue of the corresponding figure; EXPERIMENTS.md records how the measured
shapes compare with the paper's reported numbers.

Run with:  pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import pytest

from repro.cost_model import FlopCostModel, ProfileCostModel
from repro.experiments import build_training_graph
from repro.service import get_default_service


@pytest.fixture(scope="session")
def solve_service():
    """One solve service for the whole harness.

    Returns the process-wide default service -- the same one experiments fall
    back to when called with ``service=None`` -- so every figure runs against
    a single plan cache and no cell is ever solved twice in a session.  As
    currently parameterized the figures use different cost models / budget
    grids, so cross-figure cache hits are rare; the shared service still
    dedupes repeats within a figure and keeps the plumbing uniform.
    """
    return get_default_service()


@pytest.fixture(scope="session")
def vgg16_profile_graph():
    """VGG16 training graph with the profile cost model (Figure 5a setting)."""
    return build_training_graph("vgg16", cost_model=ProfileCostModel(), scale="ci")


@pytest.fixture(scope="session")
def mobilenet_profile_graph():
    """MobileNet training graph with the profile cost model (Figure 5b setting)."""
    return build_training_graph("mobilenet", cost_model=ProfileCostModel(), scale="ci")


@pytest.fixture(scope="session")
def unet_profile_graph():
    """U-Net training graph with the profile cost model (Figure 5c setting)."""
    return build_training_graph("unet", cost_model=ProfileCostModel(), scale="ci")


@pytest.fixture(scope="session")
def vgg16_flop_graph():
    """VGG16 training graph with FLOP costs (Table 2 / Figure 8 setting)."""
    return build_training_graph("vgg16", cost_model=FlopCostModel(), scale="ci")


@pytest.fixture(scope="session")
def mobilenet_flop_graph():
    return build_training_graph("mobilenet", cost_model=FlopCostModel(), scale="ci")


@pytest.fixture(scope="session")
def unet_flop_graph():
    return build_training_graph("unet", cost_model=FlopCostModel(), scale="ci")
