"""Shared fixtures and helpers for the benchmark harness.

Each benchmark module regenerates one table or figure of the paper at CI scale
(small batch sizes / resolutions, short MILP time limits) so the whole harness
runs on a single CPU core.  The printed output of each benchmark is the text
analogue of the corresponding figure; EXPERIMENTS.md records how the measured
shapes compare with the paper's reported numbers.

Run with:  pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import pytest

from repro.cost_model import FlopCostModel, ProfileCostModel
from repro.experiments import build_training_graph

GiB = 2**30
MiB = 2**20


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing.

    Solver-backed experiments are too expensive to repeat for statistical
    timing, and their value here is the regenerated artifact rather than the
    wall-clock distribution.
    """
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture(scope="session")
def vgg16_profile_graph():
    """VGG16 training graph with the profile cost model (Figure 5a setting)."""
    return build_training_graph("vgg16", cost_model=ProfileCostModel(), scale="ci")


@pytest.fixture(scope="session")
def mobilenet_profile_graph():
    """MobileNet training graph with the profile cost model (Figure 5b setting)."""
    return build_training_graph("mobilenet", cost_model=ProfileCostModel(), scale="ci")


@pytest.fixture(scope="session")
def unet_profile_graph():
    """U-Net training graph with the profile cost model (Figure 5c setting)."""
    return build_training_graph("unet", cost_model=ProfileCostModel(), scale="ci")


@pytest.fixture(scope="session")
def vgg16_flop_graph():
    """VGG16 training graph with FLOP costs (Table 2 / Figure 8 setting)."""
    return build_training_graph("vgg16", cost_model=FlopCostModel(), scale="ci")


@pytest.fixture(scope="session")
def mobilenet_flop_graph():
    return build_training_graph("mobilenet", cost_model=FlopCostModel(), scale="ci")


@pytest.fixture(scope="session")
def unet_flop_graph():
    return build_training_graph("unet", cost_model=FlopCostModel(), scale="ci")
