"""Figure 3: feature memory dominates parameter memory across architectures."""

from bench_helpers import run_once

from repro.experiments.memory_breakdown import format_memory_breakdown, memory_breakdown_table
from repro.models import fcn8, mobilenet_v1, resnet50, segnet, unet, vgg19


def test_fig3_memory_breakdown(benchmark):
    graphs = {
        "VGG19": vgg19(batch_size=64, resolution=224),
        "ResNet50": resnet50(batch_size=32, resolution=224),
        "MobileNet": mobilenet_v1(batch_size=64, resolution=224),
        "U-Net": unet(batch_size=4, resolution=(416, 608)),
        "FCN8": fcn8(batch_size=4, resolution=(416, 608)),
        "SegNet": segnet(batch_size=4, resolution=(416, 608)),
    }
    breakdowns = run_once(benchmark, memory_breakdown_table, graphs)

    print("\n[Figure 3] training memory breakdown (checkpoint-all policy)")
    print(format_memory_breakdown(breakdowns, gpu_limit_bytes=16 * 2**30))

    # Paper takeaway: activations (features) dominate parameters for every
    # convolutional architecture at realistic batch sizes.
    for b in breakdowns:
        assert b.features > b.parameters, b.model
        assert b.feature_fraction() > 0.5, b.model
