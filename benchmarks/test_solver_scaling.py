"""Ablation: MILP vs LP-rounding solve time and quality as graphs grow.

Not a single paper figure, but the quantitative backbone of Section 5's
motivation ("solving ILPs is NP-hard in general ... for architectures with
hundreds of layers it is not feasible"): the approximation's solve time grows
polynomially while staying near-optimal.
"""

import pytest

from bench_helpers import run_once

from repro.autodiff import make_training_graph
from repro.cost_model import ProfileCostModel
from repro.models import linear_cnn
from repro.solvers import solve_approx_lp_rounding, solve_ilp_rematerialization


def _graph(num_layers: int):
    fwd = linear_cnn(num_layers=num_layers, batch_size=4, resolution=32, channels=16)
    return ProfileCostModel().apply(make_training_graph(fwd))


def _budget(graph, fraction=0.7):
    return int(graph.constant_overhead + fraction * graph.total_activation_memory())


@pytest.mark.parametrize("num_layers", [8, 16])
def test_ilp_solve_scaling(benchmark, num_layers):
    graph = _graph(num_layers)
    result = run_once(benchmark, solve_ilp_rematerialization, graph, _budget(graph),
                      time_limit_s=120)
    print(f"\n[scaling/ILP] n={graph.size}: status={result.solver_status}, "
          f"solve={result.solve_time_s:.2f}s, overhead={result.overhead:.3f}x")
    assert result.feasible


@pytest.mark.parametrize("num_layers", [8, 16, 32])
def test_approximation_solve_scaling(benchmark, num_layers):
    graph = _graph(num_layers)
    result = run_once(benchmark, solve_approx_lp_rounding, graph, _budget(graph))
    print(f"\n[scaling/LP-rounding] n={graph.size}: solve={result.solve_time_s:.2f}s, "
          f"overhead={result.overhead:.3f}x")
    assert result.feasible
    assert result.overhead < 2.0
