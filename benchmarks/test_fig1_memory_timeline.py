"""Figure 1: memory over time, retain-all vs rematerialized (32-layer network)."""

from bench_helpers import MiB, run_once

from repro.autodiff import make_training_graph
from repro.cost_model import ProfileCostModel
from repro.experiments import memory_timeline
from repro.models import linear_cnn


def test_fig1_memory_timeline(benchmark):
    """A deep linear CNN, as in the paper's opening figure."""
    forward = linear_cnn(num_layers=16, batch_size=8, resolution=32, channels=32)
    graph = ProfileCostModel().apply(make_training_graph(forward))

    timeline = run_once(benchmark, memory_timeline, graph, ilp_time_limit_s=60)

    assert timeline.rematerialize_feasible
    retained = timeline.retain_all.peak_memory
    remat = timeline.rematerialized.peak_memory
    print(f"\n[Figure 1] {graph.name}")
    print(f"  retain-all peak:      {retained / MiB:8.1f} MiB")
    print(f"  rematerialized peak:  {remat / MiB:8.1f} MiB "
          f"({100 * (1 - remat / retained):.0f}% reduction)")
    print(f"  runtime increase:     {timeline.runtime_increase:.2f}x")
    # Paper: large memory reduction (30 GB -> 9 GB, i.e. ~70%) for a modest
    # runtime increase.  At CI scale the same shape must hold: a substantial
    # memory reduction at <2x runtime.
    assert remat < retained
    assert timeline.runtime_increase < 2.0
